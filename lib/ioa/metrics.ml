(* Execution metrics: action counts by category, wire-message counts by
   kind, and communication rounds (filled in by Sync_runner).

   These counters back the benchmark tables (DESIGN.md §6): sync-message
   overhead, forwarded copies, rounds-to-view.

   Domain safety (DESIGN.md §17): the scalar counters are [Atomic.t],
   so any domain may bump them and a reader on another domain sees a
   well-defined value. The by-kind tables are NOT synchronized — they
   are written only by [record], which the parallel executor calls
   exclusively on the master domain (per-domain step logs are merged at
   the barrier and recorded there, in canonical order). *)

open Vsgc_types

type t = {
  steps : int Atomic.t;
  rounds : int Atomic.t;
  cand_hits : int Atomic.t;
      (* scheduling decisions served from a cached candidate list *)
  cand_misses : int Atomic.t;
      (* per-component enabled-output rescans the cache could not avoid *)
  san_steps : int Atomic.t;  (* steps performed under the effect sanitizer *)
  san_diffs : int Atomic.t;
      (* per-participant shadow-state diffs the sanitizer computed *)
  san_races : int Atomic.t;
      (* declared-independent pairs replayed in both orders *)
  san_violations : int Atomic.t;
      (* footprint violations reported (deduplicated) *)
  by_category : (Action.category, int) Hashtbl.t;
  sent_by_kind : (Msg.Wire.kind, int) Hashtbl.t;
      (* point-to-point copies: an Rf_send to k destinations counts k *)
  sent_bytes_by_kind : (Msg.Wire.kind, int) Hashtbl.t;
  delivered_by_kind : (Msg.Wire.kind, int) Hashtbl.t;
}

let create () =
  {
    steps = Atomic.make 0;
    rounds = Atomic.make 0;
    cand_hits = Atomic.make 0;
    cand_misses = Atomic.make 0;
    san_steps = Atomic.make 0;
    san_diffs = Atomic.make 0;
    san_races = Atomic.make 0;
    san_violations = Atomic.make 0;
    by_category = Hashtbl.create 32;
    sent_by_kind = Hashtbl.create 8;
    sent_bytes_by_kind = Hashtbl.create 8;
    delivered_by_kind = Hashtbl.create 8;
  }

let bump tbl k n =
  let cur = match Hashtbl.find_opt tbl k with Some c -> c | None -> 0 in
  Hashtbl.replace tbl k (cur + n)

let record t (a : Action.t) =
  Atomic.incr t.steps;
  bump t.by_category (Action.category a) 1;
  match a with
  | Action.Rf_send (_, set, m) ->
      let copies = Proc.Set.cardinal set in
      bump t.sent_by_kind (Msg.Wire.kind m) copies;
      bump t.sent_bytes_by_kind (Msg.Wire.kind m) (copies * Msg.Wire.size_bytes m)
  | Action.Rf_deliver (_, _, m) -> bump t.delivered_by_kind (Msg.Wire.kind m) 1
  | _ -> ()

let steps t = Atomic.get t.steps
let rounds t = Atomic.get t.rounds
let add_round t = Atomic.incr t.rounds
let note_cand_hits t n = ignore (Atomic.fetch_and_add t.cand_hits n)
let note_cand_misses t n = ignore (Atomic.fetch_and_add t.cand_misses n)
let cand_hits t = Atomic.get t.cand_hits
let cand_misses t = Atomic.get t.cand_misses
let note_san_steps t n = ignore (Atomic.fetch_and_add t.san_steps n)
let note_san_diffs t n = ignore (Atomic.fetch_and_add t.san_diffs n)
let note_san_races t n = ignore (Atomic.fetch_and_add t.san_races n)
let note_san_violations t n = ignore (Atomic.fetch_and_add t.san_violations n)
let san_steps t = Atomic.get t.san_steps
let san_diffs t = Atomic.get t.san_diffs
let san_races t = Atomic.get t.san_races
let san_violations t = Atomic.get t.san_violations

let category_count t c =
  match Hashtbl.find_opt t.by_category c with Some n -> n | None -> 0

let sent_count t k =
  match Hashtbl.find_opt t.sent_by_kind k with Some n -> n | None -> 0

let sent_bytes t k =
  match Hashtbl.find_opt t.sent_bytes_by_kind k with Some n -> n | None -> 0

let delivered_count t k =
  match Hashtbl.find_opt t.delivered_by_kind k with Some n -> n | None -> 0

let pp ppf t =
  Fmt.pf ppf "steps=%d rounds=%d" (Atomic.get t.steps) (Atomic.get t.rounds);
  Hashtbl.iter
    (fun k n -> Fmt.pf ppf " sent[%s]=%d" (Msg.Wire.kind_to_string k) n)
    t.sent_by_kind
