(* Execution metrics: action counts by category, wire-message counts by
   kind, and communication rounds (filled in by Sync_runner).

   These counters back the benchmark tables (DESIGN.md §6): sync-message
   overhead, forwarded copies, rounds-to-view. *)

open Vsgc_types

type t = {
  mutable steps : int;
  mutable rounds : int;
  mutable cand_hits : int;
      (* scheduling decisions served from a cached candidate list *)
  mutable cand_misses : int;
      (* per-component enabled-output rescans the cache could not avoid *)
  mutable san_steps : int;  (* steps performed under the effect sanitizer *)
  mutable san_diffs : int;
      (* per-participant shadow-state diffs the sanitizer computed *)
  mutable san_races : int;
      (* declared-independent pairs replayed in both orders *)
  mutable san_violations : int;
      (* footprint violations reported (deduplicated) *)
  by_category : (Action.category, int) Hashtbl.t;
  sent_by_kind : (Msg.Wire.kind, int) Hashtbl.t;
      (* point-to-point copies: an Rf_send to k destinations counts k *)
  sent_bytes_by_kind : (Msg.Wire.kind, int) Hashtbl.t;
  delivered_by_kind : (Msg.Wire.kind, int) Hashtbl.t;
}

let create () =
  {
    steps = 0;
    rounds = 0;
    cand_hits = 0;
    cand_misses = 0;
    san_steps = 0;
    san_diffs = 0;
    san_races = 0;
    san_violations = 0;
    by_category = Hashtbl.create 32;
    sent_by_kind = Hashtbl.create 8;
    sent_bytes_by_kind = Hashtbl.create 8;
    delivered_by_kind = Hashtbl.create 8;
  }

let bump tbl k n =
  let cur = match Hashtbl.find_opt tbl k with Some c -> c | None -> 0 in
  Hashtbl.replace tbl k (cur + n)

let record t (a : Action.t) =
  t.steps <- t.steps + 1;
  bump t.by_category (Action.category a) 1;
  match a with
  | Action.Rf_send (_, set, m) ->
      let copies = Proc.Set.cardinal set in
      bump t.sent_by_kind (Msg.Wire.kind m) copies;
      bump t.sent_bytes_by_kind (Msg.Wire.kind m) (copies * Msg.Wire.size_bytes m)
  | Action.Rf_deliver (_, _, m) -> bump t.delivered_by_kind (Msg.Wire.kind m) 1
  | _ -> ()

let steps t = t.steps
let rounds t = t.rounds
let add_round t = t.rounds <- t.rounds + 1
let note_cand_hits t n = t.cand_hits <- t.cand_hits + n
let note_cand_misses t n = t.cand_misses <- t.cand_misses + n
let cand_hits t = t.cand_hits
let cand_misses t = t.cand_misses
let note_san_steps t n = t.san_steps <- t.san_steps + n
let note_san_diffs t n = t.san_diffs <- t.san_diffs + n
let note_san_races t n = t.san_races <- t.san_races + n
let note_san_violations t n = t.san_violations <- t.san_violations + n
let san_steps t = t.san_steps
let san_diffs t = t.san_diffs
let san_races t = t.san_races
let san_violations t = t.san_violations

let category_count t c =
  match Hashtbl.find_opt t.by_category c with Some n -> n | None -> 0

let sent_count t k =
  match Hashtbl.find_opt t.sent_by_kind k with Some n -> n | None -> 0

let sent_bytes t k =
  match Hashtbl.find_opt t.sent_bytes_by_kind k with Some n -> n | None -> 0

let delivered_count t k =
  match Hashtbl.find_opt t.delivered_by_kind k with Some n -> n | None -> 0

let pp ppf t =
  Fmt.pf ppf "steps=%d rounds=%d" t.steps t.rounds;
  Hashtbl.iter
    (fun k n -> Fmt.pf ppf " sent[%s]=%d" (Msg.Wire.kind_to_string k) n)
    t.sent_by_kind
