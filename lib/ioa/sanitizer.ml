(* The effect sanitizer: runtime honesty checking for declared
   footprints (DESIGN.md §14).

   Declared per-action read/write footprints drive the explorer's
   sleep-set pruning and the planned multicore partitioning; a lying
   footprint silently prunes real interleavings or races real state.
   This module is the dynamic half of the honesty certificate: a
   shadow-state mode that, around every performed step,

   - snapshots each participating component's state at declared-loc
     granularity (Component.observe slices) and diffs the digests
     afterwards, recovering the step's ACTUAL write set — any changed
     slice not covered by the participant's declared writes is an
     "undeclared-write" violation;

   - re-evaluates each participant's enabled outputs before and after
     the step; an action whose enabledness flipped was READ-dependent
     on something the step wrote, so if the declared footprints call
     the pair independent that is a "false-independence" violation
     (this recovers an under-approximated read set — reads that never
     change a scheduling decision stay invisible, which is why the
     race replay below exists);

   - every [race_every] steps, picks one declared-independent pair of
     currently-enabled candidates (deterministic rotation, no RNG — a
     sanitized run must stay bit-identical to an unsanitized one) and
     replays it in both orders against saved state: if the second
     action is disabled by the first ("independent-disable") or the
     two orders leave any component's shadow slices different
     ("commute-divergence"), the declared independence is a lie.

   Violations are reported as Diag.t in the same vocabulary the static
   vet passes use; under the [`Raise] policy the first one aborts the
   run (so chaos/replay drivers surface it as a verdict), under
   [`Collect] they accumulate for inspection.

   The sanitizer deliberately sits below the executor: it receives the
   raw component array plus the metrics sink and derives its own
   composition-wide footprints, so the executor depends on it and not
   the other way round. It consumes no randomness and never mutates
   state visibly (race replays restore by value), so attaching it
   cannot perturb a schedule. *)

open Vsgc_types

type policy = [ `Collect | `Raise ]

exception Violation of Diag.t

type t = {
  components : Component.packed array;
  metrics : Metrics.t;
  policy : policy;
  race_every : int;
  fp_cache : (Action.t, Footprint.t) Hashtbl.t;
      (* composition-wide footprint per action, memoized *)
  mutable diags : Diag.t list;  (* newest first; see [diags] *)
  seen : (string, unit) Hashtbl.t;  (* rendered-diag dedup *)
  pre_obs : (Footprint.loc * string) list array;  (* per component *)
  pre_outs : Action.t list array;
  participant : bool array;
  mutable steps : int;
}

let create ?(race_every = 7) ?(policy = `Collect) components metrics =
  let n = Array.length components in
  {
    components;
    metrics;
    policy;
    race_every;
    fp_cache = Hashtbl.create 64;
    diags = [];
    seen = Hashtbl.create 64;
    pre_obs = Array.make n [];
    pre_outs = Array.make n [];
    participant = Array.make n false;
    steps = 0;
  }

let diags t = List.rev t.diags
let violations t = List.length t.diags

let footprint t a =
  match Hashtbl.find_opt t.fp_cache a with
  | Some f -> f
  | None ->
      let f =
        Array.fold_left
          (fun acc c -> Footprint.union acc (Component.footprint c a))
          Footprint.empty t.components
      in
      Hashtbl.add t.fp_cache a f;
      f

let independent t a b = Footprint.independent (footprint t a) (footprint t b)

let report t d =
  let key = Diag.to_string d in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.add t.seen key ();
    t.diags <- d :: t.diags;
    Metrics.note_san_violations t.metrics 1;
    match t.policy with `Raise -> raise (Violation d) | `Collect -> ()
  end

let diag check ~subject fmt = Diag.vf ~pass:"sanitize" ~check ~subject fmt

(* Slices whose digest differs between two observations of the same
   component; a slice present on one side only counts as changed
   (absent-vs-default transitions are writes too). Loc lists are tiny
   (one to a few dozen entries), so quadratic scans are fine. *)
let changed_locs pre post =
  let changed = ref [] in
  List.iter
    (fun (l, d) ->
      match List.find_opt (fun (l', _) -> l = l') pre with
      | Some (_, d') -> if not (String.equal d d') then changed := l :: !changed
      | None -> changed := l :: !changed)
    post;
  List.iter
    (fun (l, _) ->
      if not (List.exists (fun (l', _) -> l = l') post) then
        changed := l :: !changed)
    pre;
  !changed

(* Only participants (owner or acceptors) can change state or flip
   enabledness in a step, and [accepts] is state-independent — so the
   participant set is known before the step fires and everyone else
   can be skipped wholesale. *)
let pre t ?owner (a : Action.t) =
  Metrics.note_san_steps t.metrics 1;
  Array.iteri
    (fun i c ->
      let p =
        (match owner with Some o -> o = i | None -> false)
        || Component.accepts c a
      in
      t.participant.(i) <- p;
      if p then begin
        t.pre_obs.(i) <- Component.observe c;
        t.pre_outs.(i) <- Component.outputs c
      end)
    t.components

(* ---- the race replay ---------------------------------------------- *)

let apply_joint t ~owner (a : Action.t) =
  Array.iteri
    (fun i c -> if i = owner || Component.accepts c a then Component.apply c a)
    t.components

(* Replay a declared-independent candidate pair (a owned by i, b owned
   by j) in both orders from the current (post-step) state, then
   restore it by value. The executor's caches stay valid because the
   restored state is identical, not merely equivalent. *)
let race_pair t (i, a) (j, b) =
  Metrics.note_san_races t.metrics 1;
  let restores = Array.map Component.save t.components in
  let restore () = Array.iter (fun f -> f ()) restores in
  let subject =
    Fmt.str "%s || %s" (Action.to_string a) (Action.to_string b)
  in
  let run_order first fo second so =
    let r =
      try
        apply_joint t ~owner:fo first;
        if
          not
            (List.exists (Action.equal second)
               (Component.outputs t.components.(so)))
        then
          Error
            (Fmt.str "%s disables %s" (Action.to_string first)
               (Action.to_string second))
        else begin
          apply_joint t ~owner:so second;
          Ok (Array.map Component.observe t.components)
        end
      with e ->
        restore ();
        raise e
    in
    restore ();
    r
  in
  match (run_order a i b j, run_order b j a i) with
  | Ok o1, Ok o2 ->
      let diverged = ref None in
      Array.iteri
        (fun k obs1 ->
          if !diverged = None then
            match changed_locs obs1 o2.(k) with
            | [] -> ()
            | l :: _ -> diverged := Some (k, l))
        o1;
      Option.iter
        (fun (k, l) ->
          report t
            (diag "commute-divergence" ~subject
               "declared-independent pair does not commute: %s diverges at %a"
               (Component.name t.components.(k))
               Footprint.pp_loc l))
        !diverged
  | Error msg, _ | _, Error msg ->
      report t
        (diag "independent-disable" ~subject
           "declared-independent pair interferes: %s" msg)

(* Deterministically pick one declared-independent pair among the
   currently enabled candidates (bounded scan) and replay it. The
   rotation index comes from the step counter, not an RNG stream —
   fingerprint neutrality is non-negotiable. *)
let max_race_pairs = 32

let race_check t =
  let cands = ref [] in
  Array.iteri
    (fun i c ->
      List.iter (fun a -> cands := (i, a) :: !cands) (Component.outputs c))
    t.components;
  let cands = List.rev !cands in
  let pairs = ref [] in
  let n_pairs = ref 0 in
  let rec scan = function
    | [] -> ()
    | (i, a) :: rest ->
        List.iter
          (fun (j, b) ->
            if
              !n_pairs < max_race_pairs
              && (not (Action.equal a b))
              && independent t a b
            then begin
              pairs := ((i, a), (j, b)) :: !pairs;
              incr n_pairs
            end)
          rest;
        if !n_pairs < max_race_pairs then scan rest
  in
  scan cands;
  match List.rev !pairs with
  | [] -> ()
  | pairs ->
      let pick = t.steps / t.race_every mod List.length pairs in
      let (i, a), (j, b) = List.nth pairs pick in
      race_pair t (i, a) (j, b)

(* ---- per-step checks ---------------------------------------------- *)

let post t ?owner:_ (a : Action.t) =
  let subject = Action.to_string a in
  Array.iteri
    (fun i c ->
      if t.participant.(i) then begin
        Metrics.note_san_diffs t.metrics 1;
        let declared = (Component.footprint c a).Footprint.writes in
        List.iter
          (fun l ->
            if not (List.exists (Footprint.loc_interferes l) declared) then
              report t
                (diag "undeclared-write" ~subject
                   "%s wrote %a outside its declared write set"
                   (Component.name c) Footprint.pp_loc l))
          (changed_locs t.pre_obs.(i) (Component.observe c));
        let outs = Component.outputs c in
        let flipped =
          List.filter
            (fun b -> not (List.exists (Action.equal b) t.pre_outs.(i)))
            outs
          @ List.filter
              (fun b -> not (List.exists (Action.equal b) outs))
              t.pre_outs.(i)
        in
        List.iter
          (fun b ->
            if (not (Action.equal a b)) && independent t a b then
              report t
                (diag "false-independence" ~subject
                   "%s flipped the enabledness of %s at %s, yet their \
                    declared footprints are independent"
                   (Action.to_string a) (Action.to_string b)
                   (Component.name c)))
          flipped
      end)
    t.components;
  t.steps <- t.steps + 1;
  if t.race_every > 0 && t.steps mod t.race_every = 0 then race_check t
