(* Executable I/O-automaton components.

   A component is a state machine over the composed system's shared
   action vocabulary (Vsgc_types.Action). Its [outputs] function lists
   the locally-controlled actions enabled in the current state (each is
   its own task, matching the paper's fairness partition); [accepts]
   describes its input signature; [apply] performs the transition
   effect, for inputs and for the component's own outputs alike.

   Two static declarations ride along for the vet passes and the
   explorer's partial-order reduction: [footprint] gives the per-action
   read/write footprint of this component's share of the joint step,
   and [emits] over-approximates the output signature — it must return
   true for every action [outputs] could ever produce, in any state. *)

open Vsgc_types

type 's def = {
  name : string;
  init : 's;
  accepts : Action.t -> bool;
  outputs : 's -> Action.t list;
  apply : 's -> Action.t -> 's;
  footprint : Action.t -> Footprint.t;
  emits : Action.t -> bool;
  observe : 's -> (Footprint.loc * string) list;
}

(* Content digest for shadow-state slices. Marshal + MD5 rather than
   Hashtbl.hash: the latter stops traversing after a handful of nodes,
   so a deep state change could slip past the sanitizer's diff. The
   Closures flag keeps the digest total even if a state ever smuggles a
   closure in (today all component states are pure data). *)
let digest (x : 'a) =
  Digest.to_hex (Digest.string (Marshal.to_string x [ Marshal.Closures ]))

(* Convenience constructor: the declarations default to the sound
   coarse ones (footprint interfering with everything, output signature
   covering everything, the whole state observed as one Global slice),
   which ad-hoc test components can live with. *)
let make ?footprint ?emits ?observe ~name ~init ~accepts ~outputs ~apply () =
  {
    name;
    init;
    accepts;
    outputs;
    apply;
    footprint = (match footprint with Some f -> f | None -> Footprint.coarse name);
    emits = (match emits with Some f -> f | None -> fun _ -> true);
    observe =
      (match observe with
      | Some f -> f
      | None -> fun s -> [ (Footprint.Global name, digest s) ]);
  }

(* A component packed with its mutable current state, so that
   heterogeneous components compose into one system. The [state] ref is
   shared with whoever built the component (the harness keeps typed
   handles for invariant checking and introspection). *)
type packed = Packed : 's def * 's ref -> packed

let pack def = Packed (def, ref def.init)

let pack_with_ref def r = Packed (def, r)

let name (Packed (d, _)) = d.name

let outputs (Packed (d, s)) = d.outputs !s

let accepts (Packed (d, _)) a = d.accepts a

let apply (Packed (d, s)) a = s := d.apply !s a

let footprint (Packed (d, _)) a = d.footprint a

let emits (Packed (d, _)) a = d.emits a

let observe (Packed (d, s)) = d.observe !s

(* Capture the current state by value; the returned thunk restores it.
   Component states are persistent (apply is ['s -> Action.t -> 's]),
   so saving the ref's content is a full snapshot — the sanitizer's
   race replay leans on this to rewind the whole composition. *)
let save (Packed (_, s)) =
  let v = !s in
  fun () -> s := v

(* A purely reactive observer: accepts everything, outputs nothing.
   Like the trace monitors it stands in for, an observer is an oracle
   outside the composition's state — its private log is deliberately
   excluded from the footprint and from the sanitizer's shadow state,
   exactly as monitor state is. *)
let observer ~name ~init ~apply =
  {
    name;
    init;
    accepts = (fun _ -> true);
    outputs = (fun _ -> []);
    apply;
    footprint = (fun _ -> Footprint.empty);
    emits = (fun _ -> false);
    observe = (fun _ -> []);
  }
