(** A hand-rolled domain pool (no domainslib in the switch).

    One pool owns [jobs - 1] parked worker domains; {!run} fans one
    job's indices across the workers plus the calling domain and blocks
    until all of them are processed. Safe to call from inside a pool
    task: a nested {!run} degrades to the sequential loop, so parallel
    callers can freely compose (the parallel explorer builds systems
    whose executors parallelize their own candidate refresh). *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [max 0 (jobs - 1)] worker domains. [jobs] is
    clamped to at least 1; a 1-wide pool runs everything inline. *)

val jobs : t -> int

val run : t -> (int -> unit) -> int -> unit
(** [run t f count] evaluates [f i] for every [i] in [0 .. count - 1],
    distributed over the pool, and returns when all are done. [f] runs
    concurrently with itself: distinct indices must touch disjoint
    state. If any index raises, the exception at the {e lowest} failing
    index is re-raised here (after the job drains) — the same failure
    the sequential loop would surface first. *)

val shutdown : t -> unit
(** Join the workers. Subsequent {!run}s degrade to sequential. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware's useful
    parallelism, for sizing pools and reporting bench metadata. *)

val global : jobs:int -> t
(** The process-wide shared pool, created on first use and resized
    (shutdown + respawn) when asked for a different width. The
    executor's parallel refresh and the explorer both use this, so
    parked domains never accumulate per system built. Called from
    inside a pool task it returns the current pool unchanged — a
    resize would shut the pool down mid-job, and nested {!run}s
    inline regardless of width. *)
