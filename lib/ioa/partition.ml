(* The planned multicore partition (DESIGN.md §17).

   Components are grouped by the static participation relation: over a
   probe set of representative actions, every component that could own
   an action ([emits]) or would take its step ([accepts]) is a
   participant, and all participants of one action are unioned into one
   group. Actions whose participants sit inside a single group are that
   group's internal work — a domain may perform them with no other
   domain looking, because [Component.apply] touches only the
   participant's own state ref and [accepts]/[emits] are
   state-independent. Actions spanning groups are barrier actions: only
   the master performs them, between parallel quanta.

   The probe set bounds what the partition knows: an action shape that
   never appears in it may still turn out internal to a group at run
   time (the racy engine re-checks exact participants per action), so
   the probe only decides work placement, never safety. The `vet
   domains` pass audits the complement: over the representative
   universe, no declared footprint may interfere across the planned
   groups — so the partition the engine would use is exactly as
   disjoint as the footprints claim. *)

open Vsgc_types

type t = {
  group_of : int array;  (* component index -> group id *)
  groups : int array array;
      (* group id -> member component indices, ascending; group ids
         ordered by smallest member *)
}

let participants (comps : Component.packed array) (a : Action.t) =
  let l = ref [] in
  Array.iteri
    (fun i c -> if Component.emits c a || Component.accepts c a then l := i :: !l)
    comps;
  List.rev !l

let compute ~(probe : Action.t list) (comps : Component.packed array) =
  let n = Array.length comps in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(max ri rj) <- min ri rj
  in
  List.iter
    (fun a ->
      match participants comps a with
      | [] -> ()
      | i0 :: rest -> List.iter (union i0) rest)
    probe;
  (* Path-compress and assign dense group ids in order of smallest
     member, so the layout is canonical for a given composition. *)
  let group_of = Array.make n 0 in
  let next = ref 0 in
  let id_of_root = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    let r = find i in
    let gid =
      match Hashtbl.find_opt id_of_root r with
      | Some g -> g
      | None ->
          let g = !next in
          incr next;
          Hashtbl.add id_of_root r g;
          g
    in
    group_of.(i) <- gid
  done;
  let members = Array.make !next [] in
  for i = n - 1 downto 0 do
    members.(group_of.(i)) <- i :: members.(group_of.(i))
  done;
  { group_of; groups = Array.map Array.of_list members }

let group_of t i = t.group_of.(i)
let groups t = t.groups
let n_groups t = Array.length t.groups

(* Is [a], owned by [owner], internal to one group? Exact participants
   (owner + acceptors), not the emits over-approximation: this is the
   per-action guard the racy engine uses at run time. *)
let internal_to t (comps : Component.packed array) ~owner (a : Action.t) =
  let g = t.group_of.(owner) in
  let ok = ref true in
  Array.iteri
    (fun i c ->
      if !ok && i <> owner && Component.accepts c a && t.group_of.(i) <> g then
        ok := false)
    comps;
  if !ok then Some g else None

let pp ppf t =
  Fmt.pf ppf "%d group%s:" (n_groups t) (if n_groups t = 1 then "" else "s");
  Array.iteri
    (fun g members ->
      Fmt.pf ppf " [%d:" g;
      Array.iter (fun i -> Fmt.pf ppf " %d" i) members;
      Fmt.pf ppf "]")
    t.groups
