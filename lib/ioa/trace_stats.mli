(** Queries over recorded traces — shared by the experiments and tests
    (deliveries during reconfiguration, blocking windows, per-process
    view sequences). *)

open Vsgc_types

val count : (Action.t -> bool) -> Action.t list -> int

val views_at : at:Proc.t -> Action.t list -> (View.t * Proc.Set.t) list
(** The views delivered to the application at [at], in order. *)

val delivered_payloads : at:Proc.t -> sender:Proc.t -> Action.t list -> string list

val deliveries_during_reconfiguration :
  ?nth_change:int -> at:Proc.t -> Action.t list -> int
(** Application deliveries at [at] strictly between its [nth_change]'th
    start_change (1-based, default 1) and its next view — the paper's
    "messages delivered while reconfiguring" (§1). *)

val blocked_windows : at:Proc.t -> Action.t list -> int list
(** Trace-step lengths of [at]'s blocked windows (block_ok → view). *)

val happens_before :
  (Action.t -> bool) -> (Action.t -> bool) -> Action.t list -> bool
(** Did the first match of the first predicate precede the first match
    of the second? *)

val fingerprint : Action.t list -> string
(** A stable digest ["<fnv1a-64-hex>:<length>"] of the rendered trace;
    equal iff the traces render identically action by action. Used by
    the determinism regressions. *)

val category_counts : Action.t list -> (Action.category, int) Hashtbl.t

type counters = {
  cand_hits : int;
  cand_misses : int;
  pool_reused : int;
  pool_allocated : int;
  san_steps : int;
  san_diffs : int;
  san_races : int;
  san_violations : int;
}
(** Hot-path cache effectiveness and effect-sanitizer coverage: the
    executor's candidate-cache hit/miss counters, the process-wide
    codec buffer-pool reuse/alloc counters, and the sanitizer's
    steps/diffs/races/violations. Reported next to the trace queries;
    never part of {!fingerprint} — the pinned corpus digests must not
    depend on scheduler mode, pool pressure, or sanitizer attachment. *)

val counters : Metrics.t -> counters
val pp_counters : Format.formatter -> counters -> unit
