(* A hand-rolled domain pool (no domainslib in the switch).

   One pool owns [jobs - 1] worker domains plus the calling (master)
   domain; [run] fans the indices [0 .. count-1] of one job out across
   all of them and blocks until every index has been processed. Workers
   park on a condition variable between jobs, so an idle pool costs
   nothing but the parked domains.

   Re-entrancy: [run] called from inside a pool task (a worker domain,
   or the master while it is already inside [run]) degrades to the
   sequential loop — same results, no deadlock. This is what lets the
   parallel explorer build systems whose executors are themselves in
   [`Parallel] mode: the inner fan-out quietly runs inline.

   Exceptions: a raising index does not stop the other indices (they
   are already in flight); the exception raised at the lowest index is
   re-raised on the master after the job completes, so the sequential
   fallback and the parallel path surface the same failure. *)

type job = {
  f : int -> unit;
  count : int;
  next : int Atomic.t;  (* next index to claim *)
  completed : int Atomic.t;  (* indices fully processed *)
  mutable failed : (int * exn * Printexc.raw_backtrace) option;
      (* lowest-index failure, protected by the pool mutex *)
}

type t = {
  jobs : int;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work_cv : Condition.t;  (* workers park here between jobs *)
  done_cv : Condition.t;  (* master parks here awaiting completion *)
  mutable current : job option;
  mutable epoch : int;  (* bumped per job so late workers skip stale work *)
  mutable stopped : bool;
}

(* True on worker domains and on a master already inside [run]. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let record_failure t job i exn bt =
  Mutex.lock t.m;
  (match job.failed with
  | Some (j, _, _) when j <= i -> ()
  | _ -> job.failed <- Some (i, exn, bt));
  Mutex.unlock t.m

(* Claim and process indices until the job is drained. Whoever
   completes the last index wakes the master. *)
let chew t job =
  let rec go () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.count then begin
      (try job.f i
       with exn -> record_failure t job i exn (Printexc.get_raw_backtrace ()));
      if Atomic.fetch_and_add job.completed 1 = job.count - 1 then begin
        Mutex.lock t.m;
        Condition.broadcast t.done_cv;
        Mutex.unlock t.m
      end;
      go ()
    end
  in
  go ()

let worker t =
  Domain.DLS.set in_task true;
  let rec park seen =
    Mutex.lock t.m;
    while (not t.stopped) && t.epoch = seen do
      Condition.wait t.work_cv t.m
    done;
    if t.stopped then Mutex.unlock t.m
    else begin
      let epoch = t.epoch in
      let job = t.current in
      Mutex.unlock t.m;
      (* [current] may already be back to None if the job drained
         before this worker woke — then there is nothing to chew. *)
      (match job with Some j -> chew t j | None -> ());
      park epoch
    end
  in
  park 0

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      workers = [||];
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      current = None;
      epoch = 0;
      stopped = false;
    }
  in
  t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.m;
  t.stopped <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let run_seq f count =
  for i = 0 to count - 1 do
    f i
  done

let run t f count =
  if count = 0 then ()
  else if t.jobs = 1 || t.stopped || Domain.DLS.get in_task then run_seq f count
  else begin
    let job =
      { f; count; next = Atomic.make 0; completed = Atomic.make 0; failed = None }
    in
    Mutex.lock t.m;
    t.current <- Some job;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.m;
    (* The master helps; [in_task] makes any nested [run] sequential. *)
    Domain.DLS.set in_task true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set in_task false)
      (fun () -> chew t job);
    Mutex.lock t.m;
    while Atomic.get job.completed < job.count do
      Condition.wait t.done_cv t.m
    done;
    t.current <- None;
    let failed = job.failed in
    Mutex.unlock t.m;
    match failed with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ()
  end

let recommended_jobs () = Domain.recommended_domain_count ()

(* One process-wide pool, resized (shutdown + respawn) when a caller
   asks for a different width. Callers treat it as ambient: the
   executor's parallel refresh and the explorer both go through here,
   so the process never accumulates parked domains per system built. *)
let global_mu = Mutex.create ()
let global_pool : t option ref = ref None

let global ~jobs =
  let jobs = max 1 jobs in
  Mutex.lock global_mu;
  let p =
    match !global_pool with
    | Some p when p.jobs = jobs -> p
    (* From inside a pool task, never resize: the resize would shut the
       pool down mid-job, and any [run] on it inlines anyway. *)
    | Some p when Domain.DLS.get in_task -> p
    | prev ->
        (match prev with Some p -> shutdown p | None -> ());
        let p = create ~jobs in
        global_pool := Some p;
        p
  in
  Mutex.unlock global_mu;
  p
