(* Static read/write footprints for composed-system actions.

   Each component declares, per action, which abstract state locations
   the joint step touches from its point of view: its reads must cover
   everything its enabledness and effect depend on, its writes
   everything its effect may change. The union over a composition is a
   sound over-approximation of the whole step's footprint, and two
   actions whose footprints do not interfere (no write against the
   other's reads or writes) commute: neither can enable, disable, or
   change the effect of the other. The explorer's sleep-set reduction
   and the vet wiring pass both consume these declarations. *)

open Vsgc_types

type loc =
  | Proc_state of Proc.t
      (* all automaton state co-located at process p: end-point tower +
         application client (they always step together on p's actions) *)
  | Server_state of Server.t  (* a membership server's local state *)
  | Channel of Proc.t * Proc.t  (* the CO_RFIFO stream p -> q *)
  | Channels_to of Proc.t
      (* every CO_RFIFO stream with receiver p (crash wipes them all) *)
  | Net_ctl of Proc.t
      (* CO_RFIFO's reliable/live bookkeeping for sender p — read by
         the delivery/lose gates, written by reliable/live/mbrshp/crash *)
  | Srv_channel of Server.t * Server.t  (* the server transport s -> s' *)
  | Mb_queue of Proc.t
      (* the membership service's pending event queue toward client p *)
  | Global of string
      (* a named catch-all that interferes with everything — the
         conservative fallback for undeclared components *)

let pp_loc ppf = function
  | Proc_state p -> Fmt.pf ppf "proc(%a)" Proc.pp p
  | Server_state s -> Fmt.pf ppf "server(%a)" Server.pp s
  | Channel (p, q) -> Fmt.pf ppf "chan(%a->%a)" Proc.pp p Proc.pp q
  | Channels_to p -> Fmt.pf ppf "chan(*->%a)" Proc.pp p
  | Net_ctl p -> Fmt.pf ppf "netctl(%a)" Proc.pp p
  | Srv_channel (s, s') -> Fmt.pf ppf "srvchan(%a->%a)" Server.pp s Server.pp s'
  | Mb_queue p -> Fmt.pf ppf "mbq(%a)" Proc.pp p
  | Global s -> Fmt.pf ppf "global(%s)" s

(* Two locations interfere when the state they denote may overlap. The
   Global catch-all overlaps everything, and the Channels_to wildcard
   overlaps every concrete channel with the same receiver. *)
let loc_interferes a b =
  match (a, b) with
  | Global _, _ | _, Global _ -> true
  | Proc_state p, Proc_state q -> Proc.equal p q
  | Server_state s, Server_state s' -> Server.equal s s'
  | Channel (p, q), Channel (p', q') -> Proc.equal p p' && Proc.equal q q'
  | Channel (_, q), Channels_to r | Channels_to r, Channel (_, q) -> Proc.equal q r
  | Channels_to p, Channels_to q -> Proc.equal p q
  | Net_ctl p, Net_ctl q -> Proc.equal p q
  | Srv_channel (s, t), Srv_channel (s', t') -> Server.equal s s' && Server.equal t t'
  | Mb_queue p, Mb_queue q -> Proc.equal p q
  | ( ( Proc_state _ | Server_state _ | Channel _ | Channels_to _ | Net_ctl _
      | Srv_channel _ | Mb_queue _ ),
      _ ) -> false

type t = { reads : loc list; writes : loc list }

let empty = { reads = []; writes = [] }
let is_empty t = t.reads = [] && t.writes = []

let make ?(reads = []) ?(writes = []) () = { reads; writes }

(* The common case: the action both depends on and updates [locs]. *)
let rw locs = { reads = locs; writes = locs }

let union a b =
  if is_empty a then b
  else if is_empty b then a
  else { reads = a.reads @ b.reads; writes = a.writes @ b.writes }

let interferes locs locs' =
  List.exists (fun l -> List.exists (loc_interferes l) locs') locs

(* Independence: neither action writes anything the other reads or
   writes. This is exactly the condition under which performing them in
   either order yields the same state and leaves each other's
   enabledness untouched. *)
let independent a b =
  (not (interferes a.writes b.writes))
  && (not (interferes a.writes b.reads))
  && not (interferes b.writes a.reads)

(* Conservative fallback for components without real declarations:
   every action touches one named global cell, so nothing involving
   this component is ever reordered or pruned. *)
let coarse name (_ : Action.t) = rw [ Global name ]

let pp ppf t =
  Fmt.pf ppf "@[r:{%a} w:{%a}@]"
    (Fmt.list ~sep:Fmt.comma pp_loc) t.reads
    (Fmt.list ~sep:Fmt.comma pp_loc) t.writes
