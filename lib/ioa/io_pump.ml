(* The bridge between an executor and a transport.

   A networked node hosts one composed automaton. Packets arriving off
   the wire become environment inputs ([enqueue]); [pump] injects them
   and drives the composition to quiescence; actions matching the
   [capture] predicate — the node's outputs, e.g. [Rf_send] — are
   diverted into an outbox the caller [drain]s onto the transport.

   The capture hook only records: it never re-enters the executor, so
   the no-reentrancy rule of [Executor.perform] is respected. *)

open Vsgc_types

type t = {
  exec : Executor.t;
  inbox : Action.t Queue.t;
  outbox : Action.t Queue.t;
}

let create ~capture exec =
  let t = { exec; inbox = Queue.create (); outbox = Queue.create () } in
  Executor.add_step_hook exec (fun a -> if capture a then Queue.add a t.outbox);
  t

let executor t = t.exec
let enqueue t a = Queue.add a t.inbox
let pending t = Queue.length t.inbox

let pump ?(max_steps = 200_000) t =
  while not (Queue.is_empty t.inbox) do
    Executor.inject t.exec (Queue.pop t.inbox)
  done;
  match Executor.run ~max_steps t.exec with
  | Executor.Quiescent _ -> ()
  | Executor.Step_limit ->
      (* A node that cannot quiesce on a bounded budget is livelocked;
         in the runtime that is a bug, not a schedule to explore. *)
      failwith "Io_pump.pump: step limit exceeded"

let drain t =
  let l = List.of_seq (Queue.to_seq t.outbox) in
  Queue.clear t.outbox;
  l

let quiescent t = Queue.is_empty t.inbox && Executor.is_quiescent t.exec
