(** The bridge between an executor and a transport (DESIGN.md §10).

    Packets arriving off the wire become environment inputs
    ({!enqueue}); {!pump} injects them and drives the composition to
    quiescence; actions matching [capture] are diverted into an outbox
    the caller {!drain}s onto the transport. *)

open Vsgc_types

type t

val create : capture:(Action.t -> bool) -> Executor.t -> t
(** [create ~capture exec] attaches an outbox hook to [exec]; every
    subsequently performed action satisfying [capture] is recorded in
    order. The hook only records — it never re-enters the executor. *)

val executor : t -> Executor.t

val enqueue : t -> Action.t -> unit
(** Queue an environment input for the next {!pump}. *)

val pending : t -> int
(** Inputs queued but not yet injected. *)

val pump : ?max_steps:int -> t -> unit
(** Inject every queued input, then run the composition to quiescence.
    @raise Failure if the step budget (default 200k) is exhausted —
    a node that cannot quiesce is livelocked. *)

val drain : t -> Action.t list
(** Captured outputs since the last drain, oldest first. *)

val quiescent : t -> bool
(** No queued inputs and the executor is quiescent. *)
