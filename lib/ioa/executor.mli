(** The composed-system executor.

    Implements I/O-automaton composition and the fairness model of the
    paper's §2: components share the action vocabulary; when an output
    fires, every accepting component takes the same step atomically.
    Each locally-controlled action is its own task; the seeded random
    scheduler picks (optionally weighted) among all enabled actions,
    which makes long executions fair with probability 1 — the setting
    of the §7 liveness arguments. *)

open Vsgc_types

type t

type mode = [ `Cached | `Rescan | `Parallel ]
(** Scheduling implementation. [`Cached] (the default) keeps each
    component's enabled-output list and invalidates it only when the
    component participates in a step; [`Rescan] recomputes every list
    on every scheduling decision — the pre-cache implementation, kept
    as the behavioural reference. [`Parallel] is the multicore mode
    (DESIGN.md §17): with the default [`Deterministic] merge it is the
    cached scheduler with the per-step candidate refresh fanned across
    the domain pool — parallelism below the decision loop — and stays
    bit-identical to [`Rescan] in RNG stream, trace and fingerprint;
    CI replays the schedule corpus under all of these and diffs the
    fingerprints. *)

type merge = [ `Deterministic | `Racy ]
(** [`Parallel] submode. [`Deterministic] (default): sequential
    decision loop, parallel candidate refresh, fingerprints identical
    to [`Rescan]. [`Racy]: the footprint-partitioned engine — component
    groups step concurrently for bounded quanta with per-group RNG
    streams, per-domain step logs are merged in canonical order at a
    sequential barrier where cross-group actions run. Reproducible and
    jobs-independent (group evolution depends only on group state and
    the group's keyed stream), but the trace is a different — still
    valid — execution, so racy runs are gated by the invariant battery
    and the monitors, not by pinned fingerprints. Requires pure,
    domain-safe [weights]; incompatible with the effect sanitizer
    ({!run} raises [Invalid_argument] if one is attached). *)

(** {1 Environment knobs}

    Each parser returns the value to use plus a warning to print when
    the input was not recognized — unknown values fail loudly (one
    stderr line naming the accepted values) and fall back to the
    default rather than being silently coerced. *)

val mode_of_env : string option -> (mode * merge) * string option
(** [VSGC_SCHED]: accepted values [cached], [rescan], [parallel],
    [parallel-racy]; unset/empty means the default ([`Cached]). *)

val sanitize_of_env : string option -> Sanitizer.policy option * string option
(** [VSGC_SANITIZE]: accepted values [off]/[0]/empty (off), [collect],
    [raise]/[on]/[1]. Unknown values warn and leave the sanitizer off. *)

val jobs_of_env : string option -> int * string option
(** [VSGC_JOBS]: a positive integer; unset/empty means 1. *)

val set_default_mode : mode -> unit
(** Mode used by {!create} when [?mode] is omitted. Initialized from
    [VSGC_SCHED] via {!mode_of_env}. *)

val get_default_mode : unit -> mode

val set_default_merge : merge -> unit
(** Merge submode used by {!create} when [?merge] is omitted; also
    initialized from [VSGC_SCHED] ([parallel-racy] selects [`Racy]). *)

val get_default_merge : unit -> merge

val set_default_sanitize : Sanitizer.policy option -> unit
(** Sanitizer policy used by {!create} when [?sanitize] is omitted.
    Initialized from [VSGC_SANITIZE] via {!sanitize_of_env}. *)

val get_default_sanitize : unit -> Sanitizer.policy option

val set_default_jobs : int -> unit
(** Domain-pool width used by {!create} when [?jobs] is omitted
    (clamped to at least 1). Initialized from [VSGC_JOBS]. *)

val get_default_jobs : unit -> int

val default_weights : Action.t -> float
(** Weight 1.0 for everything except the adversary move [Rf_lose]
    (weight 0: scenarios opt into message loss). *)

val create :
  ?seed:int ->
  ?weights:(Action.t -> float) ->
  ?keep_trace:bool ->
  ?mode:mode ->
  ?merge:merge ->
  ?jobs:int ->
  ?sanitize:Sanitizer.policy option ->
  Component.packed list ->
  t
(** [sanitize] attaches the effect sanitizer (default: the process-wide
    {!get_default_sanitize}; pass [Some None] to force it off). A
    sanitized run is fingerprint-identical to an unsanitized one.
    [jobs] is the domain-pool width [`Parallel] runs use (default: the
    process-wide {!get_default_jobs}); at 1, even [`Parallel] stays on
    the calling domain. *)

val mode : t -> mode
val merge : t -> merge
val jobs : t -> int

val metrics : t -> Metrics.t
val rng : t -> Rng.t

val sanitizer : t -> Sanitizer.t option
(** The attached effect sanitizer, if any — query it for accumulated
    footprint diagnostics after a [`Collect]-policy run. *)

val add_monitor : t -> Monitor.t -> unit
(** Attach a specification monitor; it observes every subsequent step
    and raises {!Monitor.Violation} on non-conformance. *)

val add_step_hook : t -> (Action.t -> unit) -> unit
(** Attach an arbitrary per-step observer (e.g. invariant checking). *)

val add_choice_hook : t -> (int option -> Action.t -> unit) -> unit
(** Attach a choice-point observer: called on every {!perform} with the
    owning component's index ([None] for environment injections),
    {e before} components move and monitors observe — so a schedule
    recorder captures the decision even when the step itself raises.
    The explorer ({!module:Vsgc_explore} in the growth tree) uses this
    to turn any execution into a replayable schedule. *)

val trace : t -> Action.t list
(** The trace so far, oldest first (empty if [keep_trace:false]). *)

val trace_length : t -> int

val components : t -> Component.packed array
(** The composition, in owner-index order (shared, not a copy). *)

val footprint : t -> Action.t -> Footprint.t
(** The composition-wide footprint of an action: the union of every
    component's declared share of the joint step. *)

val independence : t -> Action.t -> Action.t -> bool
(** The independence relation the declared footprints induce on this
    composition (memoized; state-independent). Independent actions
    commute: performing them in either order reaches the same state,
    and neither enables or disables the other. *)

val partition : t -> Partition.t
(** The planned multicore partition of this composition, probed from
    the currently enabled actions — what the racy engine would use for
    work placement, and what the [vet domains] pass audits against the
    declared footprints. *)

val candidates : t -> (int * Action.t) list
(** All enabled locally-controlled actions, tagged with owner index.
    Safe against out-of-band state mutation: harness code that writes
    component state refs directly (bypassing {!perform}) is picked up
    because every public read resynchronizes the scheduling cache. *)

val perform : t -> ?owner:int -> Action.t -> unit
(** Execute one step of the composition: the owner (if any) and every
    accepting component move together; monitors and hooks observe. *)

val inject : t -> Action.t -> unit
(** Perform an environment input (failure-detector event, crash, ...). *)

val step : t -> bool
(** One scheduler step; [false] when quiescent (no enabled action has
    positive weight). Single-stepping is always sequential, whatever
    the mode. *)

type outcome = Quiescent of int | Step_limit

val run : ?max_steps:int -> ?stop:(unit -> bool) -> t -> outcome
(** Run until quiescence, [stop], or the step budget. Under
    [`Parallel]+[`Racy] this is the partitioned engine: [stop] is
    checked at barriers only, and the step count includes every merged
    group step. Raises [Invalid_argument] if a racy run has a
    sanitizer attached. *)

val is_quiescent : t -> bool

val run_filtered : ?max_steps:int -> t -> allow:(Action.t -> bool) -> int
(** Run restricted to actions satisfying [allow]; returns steps taken.
    Always sequential (the round-synchronous runner's entry point). *)

val finish : t -> unit
(** Discharge residual monitor obligations ([at_end]); raises
    {!Monitor.Violation} on the first failure. *)
