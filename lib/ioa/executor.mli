(** The composed-system executor.

    Implements I/O-automaton composition and the fairness model of the
    paper's §2: components share the action vocabulary; when an output
    fires, every accepting component takes the same step atomically.
    Each locally-controlled action is its own task; the seeded random
    scheduler picks (optionally weighted) among all enabled actions,
    which makes long executions fair with probability 1 — the setting
    of the §7 liveness arguments. *)

open Vsgc_types

type t

type mode = [ `Cached | `Rescan ]
(** Scheduling implementation. [`Cached] (the default) keeps each
    component's enabled-output list and invalidates it only when the
    component participates in a step; [`Rescan] recomputes every list
    on every scheduling decision — the pre-cache implementation, kept
    as the behavioural reference. Both produce bit-identical RNG
    streams, traces, and fingerprints (DESIGN.md §12); CI replays the
    schedule corpus under both and diffs the fingerprints. *)

val set_default_mode : mode -> unit
(** Mode used by {!create} when [?mode] is omitted. Initialized from
    the [VSGC_SCHED] environment variable ([rescan] selects
    [`Rescan]); anything else, or unset, selects [`Cached]. *)

val get_default_mode : unit -> mode

val set_default_sanitize : Sanitizer.policy option -> unit
(** Sanitizer policy used by {!create} when [?sanitize] is omitted.
    Initialized from the [VSGC_SANITIZE] environment variable: unset,
    empty, ["0"] or ["off"] → [None]; ["collect"] → [Some `Collect];
    anything else (["1"], ["raise"], ...) → [Some `Raise]. *)

val get_default_sanitize : unit -> Sanitizer.policy option

val default_weights : Action.t -> float
(** Weight 1.0 for everything except the adversary move [Rf_lose]
    (weight 0: scenarios opt into message loss). *)

val create :
  ?seed:int ->
  ?weights:(Action.t -> float) ->
  ?keep_trace:bool ->
  ?mode:mode ->
  ?sanitize:Sanitizer.policy option ->
  Component.packed list ->
  t
(** [sanitize] attaches the effect sanitizer (default: the process-wide
    {!get_default_sanitize}; pass [Some None] to force it off). A
    sanitized run is fingerprint-identical to an unsanitized one. *)

val mode : t -> mode

val metrics : t -> Metrics.t
val rng : t -> Rng.t

val sanitizer : t -> Sanitizer.t option
(** The attached effect sanitizer, if any — query it for accumulated
    footprint diagnostics after a [`Collect]-policy run. *)

val add_monitor : t -> Monitor.t -> unit
(** Attach a specification monitor; it observes every subsequent step
    and raises {!Monitor.Violation} on non-conformance. *)

val add_step_hook : t -> (Action.t -> unit) -> unit
(** Attach an arbitrary per-step observer (e.g. invariant checking). *)

val add_choice_hook : t -> (int option -> Action.t -> unit) -> unit
(** Attach a choice-point observer: called on every {!perform} with the
    owning component's index ([None] for environment injections),
    {e before} components move and monitors observe — so a schedule
    recorder captures the decision even when the step itself raises.
    The explorer ({!module:Vsgc_explore} in the growth tree) uses this
    to turn any execution into a replayable schedule. *)

val trace : t -> Action.t list
(** The trace so far, oldest first (empty if [keep_trace:false]). *)

val trace_length : t -> int

val components : t -> Component.packed array
(** The composition, in owner-index order (shared, not a copy). *)

val footprint : t -> Action.t -> Footprint.t
(** The composition-wide footprint of an action: the union of every
    component's declared share of the joint step. *)

val independence : t -> Action.t -> Action.t -> bool
(** The independence relation the declared footprints induce on this
    composition (memoized; state-independent). Independent actions
    commute: performing them in either order reaches the same state,
    and neither enables or disables the other. *)

val candidates : t -> (int * Action.t) list
(** All enabled locally-controlled actions, tagged with owner index.
    Safe against out-of-band state mutation: harness code that writes
    component state refs directly (bypassing {!perform}) is picked up
    because every public read resynchronizes the scheduling cache. *)

val perform : t -> ?owner:int -> Action.t -> unit
(** Execute one step of the composition: the owner (if any) and every
    accepting component move together; monitors and hooks observe. *)

val inject : t -> Action.t -> unit
(** Perform an environment input (failure-detector event, crash, ...). *)

val step : t -> bool
(** One scheduler step; [false] when quiescent (no enabled action has
    positive weight). *)

type outcome = Quiescent of int | Step_limit

val run : ?max_steps:int -> ?stop:(unit -> bool) -> t -> outcome
(** Run until quiescence, [stop], or the step budget. *)

val is_quiescent : t -> bool

val run_filtered : ?max_steps:int -> t -> allow:(Action.t -> bool) -> int
(** Run restricted to actions satisfying [allow]; returns steps taken. *)

val finish : t -> unit
(** Discharge residual monitor obligations ([at_end]); raises
    {!Monitor.Violation} on the first failure. *)
