(* Queries over recorded traces.

   The executor's trace is the externally observable behaviour of the
   composed system; these helpers answer the questions the experiments
   and tests ask of it (deliveries during reconfiguration, blocking
   windows, per-process view sequences) without each caller hand-rolling
   a scan. *)

open Vsgc_types

let count pred trace = List.length (List.filter pred trace)

(* The views delivered to the application at [p], in order. *)
let views_at ~at trace =
  List.filter_map
    (function Action.App_view (p, v, tset) when Proc.equal p at -> Some (v, tset) | _ -> None)
    trace

(* The payloads delivered to [at] from [sender], in order. *)
let delivered_payloads ~at ~sender trace =
  List.filter_map
    (function
      | Action.App_deliver (p, q, m) when Proc.equal p at && Proc.equal q sender ->
          Some (Msg.App_msg.payload m)
      | _ -> None)
    trace

(* Application deliveries at [at] that occur strictly between its
   [k]'th start_change notification (1-based) and its next view — the
   paper's "messages delivered while reconfiguring" (§1, bench E6). *)
let deliveries_during_reconfiguration ?(nth_change = 1) ~at trace =
  let rec scan sc_seen counting count = function
    | [] -> count
    | Action.Mb_start_change (p, _, _) :: rest when Proc.equal p at ->
        let sc_seen = sc_seen + 1 in
        scan sc_seen (counting || sc_seen = nth_change) count rest
    | Action.App_view (p, _, _) :: rest when Proc.equal p at ->
        if counting then count else scan sc_seen counting count rest
    | Action.App_deliver (p, _, _) :: rest when Proc.equal p at && counting ->
        scan sc_seen counting (count + 1) rest
    | _ :: rest -> scan sc_seen counting count rest
  in
  scan 0 (nth_change = 0) 0 trace

(* The length (in trace steps) of [at]'s blocked window: from its
   block_ok acknowledgment to its next view. Returns the windows for
   every reconfiguration observed. *)
let blocked_windows ~at trace =
  let rec scan opened idx acc = function
    | [] -> List.rev acc
    | Action.Block_ok p :: rest when Proc.equal p at -> scan (Some idx) (idx + 1) acc rest
    | Action.App_view (p, _, _) :: rest when Proc.equal p at -> (
        match opened with
        | Some start -> scan None (idx + 1) ((idx - start) :: acc) rest
        | None -> scan None (idx + 1) acc rest)
    | _ :: rest -> scan opened (idx + 1) acc rest
  in
  scan None 0 [] trace

(* Did [a] occur before [b] (first occurrences)? *)
let happens_before pred_a pred_b trace =
  let rec go seen_a = function
    | [] -> false
    | x :: _ when pred_b x -> seen_a
    | x :: rest -> go (seen_a || pred_a x) rest
  in
  go false trace

(* A stable digest of a trace: FNV-1a 64-bit over the rendered actions.
   Two traces fingerprint equal iff their renderings agree action by
   action — the determinism regressions compare these across runs. *)
let fingerprint trace =
  let h = ref 0xcbf29ce484222325L in
  let mix c =
    h := Int64.mul (Int64.logxor !h (Int64.of_int c)) 0x100000001b3L
  in
  let n = ref 0 in
  List.iter
    (fun a ->
      String.iter (fun ch -> mix (Char.code ch)) (Fmt.str "%a" Action.pp a);
      mix (Char.code '\n');
      incr n)
    trace;
  Fmt.str "%Lx:%d" !h !n

(* Hot-path cache effectiveness and sanitizer coverage, reported
   alongside the trace queries in bench and node output. Deliberately
   NOT part of [fingerprint]: the counters vary with scheduler mode,
   pool pressure, and sanitizer attachment while the observable trace
   does not, and the pinned corpus digests must stay mode- and
   sanitize-independent. *)
type counters = {
  cand_hits : int;
  cand_misses : int;
  pool_reused : int;
  pool_allocated : int;
  san_steps : int;
  san_diffs : int;
  san_races : int;
  san_violations : int;
}

let counters metrics =
  {
    cand_hits = Metrics.cand_hits metrics;
    cand_misses = Metrics.cand_misses metrics;
    pool_reused = Bin.Pool.reused ();
    pool_allocated = Bin.Pool.allocated ();
    san_steps = Metrics.san_steps metrics;
    san_diffs = Metrics.san_diffs metrics;
    san_races = Metrics.san_races metrics;
    san_violations = Metrics.san_violations metrics;
  }

let pp_counters ppf c =
  Fmt.pf ppf
    "cand_hits=%d cand_misses=%d pool_reused=%d pool_allocated=%d \
     san_steps=%d san_diffs=%d san_races=%d san_violations=%d"
    c.cand_hits c.cand_misses c.pool_reused c.pool_allocated c.san_steps
    c.san_diffs c.san_races c.san_violations

(* Per-category totals — a cheap sanity check against Metrics. *)
let category_counts trace =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let c = Action.category a in
      Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    trace;
  tbl
