(** Executable I/O-automaton components.

    A component is a state machine over the composed system's shared
    action vocabulary ({!Vsgc_types.Action}). Composition follows the
    paper's §2: when an output action fires, every component that
    accepts it takes the same step atomically. *)

open Vsgc_types

type 's def = {
  name : string;
  init : 's;
  accepts : Action.t -> bool;  (** the input signature *)
  outputs : 's -> Action.t list;
      (** the locally-controlled actions enabled in a state; each is
          its own fairness task, as in the paper's end-point automata *)
  apply : 's -> Action.t -> 's;
      (** the transition effect — for accepted inputs and for the
          component's own outputs alike *)
  footprint : Action.t -> Footprint.t;
      (** this component's share of the joint step: reads must cover
          everything enabledness and effect depend on, writes
          everything the effect may change; {!Footprint.empty} for
          actions the component neither accepts nor outputs *)
  emits : Action.t -> bool;
      (** static output signature: must hold for every action [outputs]
          could ever produce, in any state (an over-approximation) *)
  observe : 's -> (Footprint.loc * string) list;
      (** shadow-state decomposition for the effect sanitizer: the
          current state sliced at declared-loc granularity, each slice
          reduced to a content digest (use {!digest}). Two observations
          of equal states must produce equal slices — digest canonical
          projections (lists, not balanced-tree internals) where the
          same logical value can have several representations. Every
          mutable part of the state must be covered by some slice. *)
}

val digest : 'a -> string
(** Content digest (Marshal + MD5) for {!observe} slices. Deep-total,
    unlike [Hashtbl.hash] which truncates its traversal. *)

val make :
  ?footprint:(Action.t -> Footprint.t) ->
  ?emits:(Action.t -> bool) ->
  ?observe:('s -> (Footprint.loc * string) list) ->
  name:string ->
  init:'s ->
  accepts:(Action.t -> bool) ->
  outputs:('s -> Action.t list) ->
  apply:('s -> Action.t -> 's) ->
  unit ->
  's def
(** Build a def; [footprint] defaults to the sound {!Footprint.coarse}
    fallback, [emits] to the everything signature, and [observe] to the
    whole state as one [Global name] slice — fine for ad-hoc test
    components, too weak for anything the vet passes lint. *)

type packed = Packed : 's def * 's ref -> packed
(** A component with its mutable current state, packed so that
    heterogeneous components compose into one system. *)

val pack : 's def -> packed
(** Pack with a fresh state cell initialized to [def.init]. *)

val pack_with_ref : 's def -> 's ref -> packed
(** Pack sharing [ref] with the caller — the harness keeps these typed
    handles for invariant checking and observation. *)

val name : packed -> string

val outputs : packed -> Action.t list
(** Enabled locally-controlled actions in the current state. *)

val accepts : packed -> Action.t -> bool
val apply : packed -> Action.t -> unit

val footprint : packed -> Action.t -> Footprint.t
(** The declared per-action footprint (state-independent). *)

val emits : packed -> Action.t -> bool
(** The declared static output signature (state-independent). *)

val observe : packed -> (Footprint.loc * string) list
(** The current state's shadow-slice digests (see the [observe] field). *)

val save : packed -> unit -> unit
(** Capture the current state by value; calling the returned thunk
    restores it. Sound because [apply] is persistent — the ref's
    content is a full snapshot. *)

val observer :
  name:string ->
  init:'s ->
  apply:('s -> Action.t -> 's) ->
  's def
(** A purely reactive component: accepts everything, outputs nothing.
    Observers are oracles — their private log is excluded from the
    footprint, exactly as trace-monitor state is. *)
