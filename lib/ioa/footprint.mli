(** Static read/write footprints for composed-system actions.

    A component declares, per action, the abstract state locations its
    part of the joint step reads (everything enabledness and effect
    depend on) and writes (everything the effect may change). Unions of
    footprints over a composition over-approximate the whole step, and
    {!independent} footprints commute — the soundness basis for the
    explorer's sleep-set reduction and one of the vet passes. *)

open Vsgc_types

(** Abstract state locations. Distinct constructors denote disjoint
    state except where {!loc_interferes} says otherwise ([Global]
    overlaps everything; [Channels_to p] overlaps [Channel (_, p)]). *)
type loc =
  | Proc_state of Proc.t
      (** all automaton state co-located at process [p] (end-point
          tower + application client) *)
  | Server_state of Server.t
  | Channel of Proc.t * Proc.t  (** the CO_RFIFO stream p -> q *)
  | Channels_to of Proc.t  (** every CO_RFIFO stream into p *)
  | Net_ctl of Proc.t
      (** CO_RFIFO's reliable/live bookkeeping for sender [p] *)
  | Srv_channel of Server.t * Server.t
  | Mb_queue of Proc.t
      (** the membership service's pending queue toward client [p] *)
  | Global of string  (** named catch-all, interferes with everything *)

val loc_interferes : loc -> loc -> bool
val pp_loc : Format.formatter -> loc -> unit

type t = { reads : loc list; writes : loc list }

val empty : t
val is_empty : t -> bool
val make : ?reads:loc list -> ?writes:loc list -> unit -> t

val rw : loc list -> t
(** [rw locs] both reads and writes [locs] — the common case. *)

val union : t -> t -> t

val independent : t -> t -> bool
(** Neither footprint writes anything the other reads or writes: the
    actions commute and cannot enable or disable each other. *)

val coarse : string -> Action.t -> t
(** A per-action footprint that maps everything to one named {!Global}
    cell — the sound fallback for components without declarations. *)

val pp : Format.formatter -> t -> unit
