(** The effect sanitizer: runtime honesty checking for declared
    footprints (DESIGN.md §14).

    Attached to an executor (via [Executor.create ~sanitize] or the
    [VSGC_SANITIZE] environment variable), it shadow-snapshots every
    step at declared-loc granularity and reports:

    - ["undeclared-write"] — a participant's state slice changed at a
      loc its declared write set does not cover;
    - ["false-independence"] — the step flipped the enabledness of an
      action whose declared footprint is independent of the step's;
    - ["independent-disable"] / ["commute-divergence"] — a periodic
      both-orders replay of a declared-independent enabled pair showed
      the pair does not actually commute.

    The sanitizer consumes no randomness and restores replayed state by
    value, so a sanitized run is fingerprint-identical to an
    unsanitized one. *)

open Vsgc_types

type policy = [ `Collect  (** accumulate diagnostics *) | `Raise ]
(** Under [`Raise] the first violation raises {!Violation}. *)

exception Violation of Diag.t

type t

val create :
  ?race_every:int ->
  ?policy:policy ->
  Component.packed array ->
  Metrics.t ->
  t
(** [race_every] (default 7): run the both-orders race replay every
    that many steps; [0] disables it. [policy] defaults to [`Collect]. *)

val pre : t -> ?owner:int -> Action.t -> unit
(** Called by the executor after the scheduling decision, before any
    [apply]: snapshots the participants' shadow slices and enabled
    outputs. *)

val post : t -> ?owner:int -> Action.t -> unit
(** Called after the applies (and after trace/metrics recording):
    diffs the shadow slices against the declared write set, checks
    enabledness flips against declared independence, and periodically
    races a declared-independent pair. *)

val diags : t -> Diag.t list
(** Deduplicated violations in discovery order. *)

val violations : t -> int

val footprint : t -> Action.t -> Footprint.t
(** The composition-wide (union) footprint of an action, memoized. *)

val independent : t -> Action.t -> Action.t -> bool
