(* Machine-readable diagnostics shared by the vet passes and the
   runtime effect sanitizer.

   One line per finding, stable format:

     vet:<pass>:<check>: <subject>: <message>

   so CI greps and humans read the same output. A pass that returns an
   empty list is clean; any diagnostic is a wiring error (exit code 1
   in the vet driver). The record lives here, below the executor,
   because the dynamic sanitizer reports footprint violations in the
   same vocabulary the static passes use — one diagnostic type, one
   grep pattern, whether the finding came from a lint or from a live
   shadow-state diff. *)

type t = {
  pass : string;  (* "wiring" | "inherit" | "sched" | "effects" | "sanitize" *)
  check : string;  (* e.g. "dangling-output", "undeclared-write" *)
  subject : string;  (* the offending action, component, or file *)
  message : string;
}

let v ~pass ~check ~subject message = { pass; check; subject; message }

let vf ~pass ~check ~subject fmt = Fmt.kstr (v ~pass ~check ~subject) fmt

let to_string d = Fmt.str "vet:%s:%s: %s: %s" d.pass d.check d.subject d.message

let pp ppf d = Fmt.string ppf (to_string d)

(* One flat JSON object per diagnostic (JSONL when printed one per
   line) — the machine half of vet's output contract, so CI can
   annotate findings without scraping the human lines. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  Fmt.str {|{"pass":"%s","check":"%s","subject":"%s","message":"%s"}|}
    (json_escape d.pass) (json_escape d.check) (json_escape d.subject)
    (json_escape d.message)
