(** Component packaging of the end-point automata, at each inheritance
    layer, plus the crash/recovery layer of paper §8.

    A crashed end-point produces no outputs and ignores every input
    except recover, which restarts the automaton from its initial state
    under its original identity (no stable storage). *)

open Vsgc_types

type layer =
  [ `Wv  (** WV_RFIFO_p alone (Figure 9) *)
  | `Vs  (** VS_RFIFO+TS_p (Figure 10) — no application blocking *)
  | `Full  (** GCS_p = VS_RFIFO+TS+SD_p (Figure 11) *) ]

type t = { g : Gcs.t; layer : layer; crashed : bool }

val initial :
  ?strategy:Forwarding.kind -> ?gc:bool -> ?compact_sync:bool -> ?hierarchy:int ->
  ?mutation:Vs_rfifo_ts.mutation -> layer:layer -> Proc.t -> t
val me : t -> Proc.t
val gcs : t -> Gcs.t
val vs : t -> Vs_rfifo_ts.t
val wv : t -> Wv_rfifo.t
val crashed : t -> bool
val current_view : t -> View.t

val outputs : t -> Action.t list
val accepts : Proc.t -> Action.t -> bool
val apply : t -> Action.t -> t

val def :
  ?strategy:Forwarding.kind -> ?gc:bool -> ?compact_sync:bool -> ?hierarchy:int ->
  ?mutation:Vs_rfifo_ts.mutation ->
  ?layer:layer -> Proc.t -> t Vsgc_ioa.Component.def

val component :
  ?strategy:Forwarding.kind -> ?gc:bool -> ?compact_sync:bool -> ?hierarchy:int ->
  ?mutation:Vs_rfifo_ts.mutation ->
  ?layer:layer -> Proc.t -> Vsgc_ioa.Component.packed * t ref
(** Build the component with a typed state handle (used by the §6/§7
    invariant checkers and the harness observations). *)
