(** Component packaging of the end-point automata, at each inheritance
    layer, plus the crash/recovery layer of paper §8.

    A crashed end-point produces no outputs and ignores every input
    except recover, which restarts the automaton from its initial state
    under its original identity (no stable storage). *)

open Vsgc_types

type layer =
  [ `Wv  (** WV_RFIFO_p alone (Figure 9) *)
  | `Vs  (** VS_RFIFO+TS_p (Figure 10) — no application blocking *)
  | `Full  (** GCS_p = VS_RFIFO+TS+SD_p (Figure 11) *) ]

type t = { g : Gcs.t; layer : layer; crashed : bool }

val initial :
  ?strategy:Forwarding.kind -> ?gc:bool -> ?compact_sync:bool -> ?hierarchy:int ->
  ?mutation:Vs_rfifo_ts.mutation -> layer:layer -> Proc.t -> t
val me : t -> Proc.t
val gcs : t -> Gcs.t
val vs : t -> Vs_rfifo_ts.t
val wv : t -> Wv_rfifo.t
val crashed : t -> bool
val current_view : t -> View.t

(** {1 Self-stabilization (DESIGN.md §13)}

    The fault layer's state-corruption class and the local legitimacy
    guards that detect it. A detected end-point recycles through the §8
    crash-rejoin machinery (no stable storage: rejoining from initial
    state resets every bounded counter — the epoch recycling of
    practically-self-stabilizing virtual synchrony). *)

type corruption =
  | Last_dlvrd  (** delivered index pushed past the contiguous prefix *)
  | Last_sent  (** sent index pushed past the own queue end *)
  | View_id  (** current view identifier pushed past the membership's *)
  | Wraparound  (** all view identifiers at {!Vsgc_types.View.counter_bound} *)
  | Payload
      (** scribbled buffered message — {e not} locally detectable; the
          global §6 invariants catch the divergence instead *)

val all_corruptions : corruption list
val detectable_corruptions : corruption list
(** The fields whose corruption {!self_check} is guaranteed to flag. *)

val corruption_to_string : corruption -> string
val corruption_of_string : string -> corruption option

val corrupt : salt:int -> corruption -> t -> t
(** Apply a seeded state mutation. Mutations are computed relative to
    the current state, so they corrupt at any point of a run.
    @raise Invalid_argument on a crashed end-point. *)

val self_check : t -> string option
(** Local legitimacy guards over the whole tower ([Some reason] =
    corrupt or counter-exhausted state); [None] on every reachable
    state and on crashed end-points. *)

val outputs : t -> Action.t list
val accepts : Proc.t -> Action.t -> bool
val apply : t -> Action.t -> t

val def :
  ?strategy:Forwarding.kind -> ?gc:bool -> ?compact_sync:bool -> ?hierarchy:int ->
  ?mutation:Vs_rfifo_ts.mutation ->
  ?layer:layer -> Proc.t -> t Vsgc_ioa.Component.def

val component :
  ?strategy:Forwarding.kind -> ?gc:bool -> ?compact_sync:bool -> ?hierarchy:int ->
  ?mutation:Vs_rfifo_ts.mutation ->
  ?layer:layer -> Proc.t -> Vsgc_ioa.Component.packed * t ref
(** Build the component with a typed state handle (used by the §6/§7
    invariant checkers and the harness observations). *)
