(* The within-view reliable FIFO multicast end-point automaton
   WV_RFIFO_p (paper §5.1, Figure 9).

   This is the base layer of the inheritance tower. It forwards
   membership views to the application unchanged (preserving Local
   Monotonicity and Self Inclusion), and synchronizes message delivery
   with views so that every message is delivered in the view in which
   it was sent: a view_msg marker is sent down each CO_RFIFO stream
   before any application message of a new view, and received messages
   are filed under the view conveyed by the sender's latest marker.

   Every guard ([*_enabled]) and effect ([*_effect]) below corresponds
   to a pre:/eff: block of Figure 9; the child layers conjoin their own
   preconditions and prepend their own effects (paper §2, inheritance). *)

open Vsgc_types
module Int_map = Map.Make (Int)

type t = {
  me : Proc.t;
  (* msgs[q][v][i] — 1-based sparse sequences per sender per view *)
  msgs : Msg.App_msg.t Int_map.t View.Map.t Proc.Map.t;
  last_sent : int;
  last_rcvd : int Proc.Map.t;  (* default 0 *)
  last_dlvrd : int Proc.Map.t;  (* default 0 *)
  current_view : View.t;
  mbrshp_view : View.t;
  view_msg : View.t Proc.Map.t;  (* default: q's initial view *)
  reliable_set : Proc.Set.t;
  gc : bool;
      (* §5.1 note: a real implementation discards buffers of old
         views. With [gc] set, installing a view drops every buffer
         whose view identifier is below the PREVIOUS current view's —
         those can never again be delivered (identifiers only grow)
         nor forwarded (forwarding serves the latest cut's view).
         Off by default: the proof-faithful automaton never discards,
         and the §6 invariants quantify over the full buffers. *)
}

let initial ?(gc = false) me =
  {
    me;
    msgs = Proc.Map.empty;
    last_sent = 0;
    last_rcvd = Proc.Map.empty;
    last_dlvrd = Proc.Map.empty;
    current_view = View.initial me;
    mbrshp_view = View.initial me;
    view_msg = Proc.Map.empty;
    reliable_set = Proc.Set.singleton me;
    gc;
  }

(* -- Message-queue helpers -------------------------------------------- *)

let queue_of t q v =
  match Proc.Map.find_opt q t.msgs with
  | None -> Int_map.empty
  | Some per_view -> (
      match View.Map.find_opt v per_view with
      | None -> Int_map.empty
      | Some m -> m)

let msgs_get t q v i = Int_map.find_opt i (queue_of t q v)

let msgs_set t q v i m =
  let per_view =
    match Proc.Map.find_opt q t.msgs with None -> View.Map.empty | Some x -> x
  in
  let qmap = match View.Map.find_opt v per_view with None -> Int_map.empty | Some x -> x in
  { t with
    msgs = Proc.Map.add q (View.Map.add v (Int_map.add i m qmap) per_view) t.msgs }

(* Largest k such that indices 1..k are all present — the paper's
   LongestPrefixOf(msgs[q][v]). *)
let longest_prefix t q v =
  let qmap = queue_of t q v in
  let rec go k = if Int_map.mem (k + 1) qmap then go (k + 1) else k in
  go 0

(* Index of the last element — LastIndexOf(msgs[q][v]). Own queues are
   contiguous, so for them this equals the longest prefix. *)
let last_index t q v =
  match Int_map.max_binding_opt (queue_of t q v) with
  | None -> 0
  | Some (i, _) -> i

let last_rcvd t q = Proc.Map.find_default ~default:0 q t.last_rcvd
let last_dlvrd t q = Proc.Map.find_default ~default:0 q t.last_dlvrd
let view_msg_of t q = Proc.Map.find_default ~default:(View.initial q) q t.view_msg

(* Senders that may have deliverable messages in the current view. *)
let known_senders t =
  Proc.Set.union (View.set t.current_view) (Proc.Map.key_set t.msgs)

(* -- INPUT mbrshp.view_p(v) ------------------------------------------- *)

let mbrshp_view_effect t v = { t with mbrshp_view = v }

(* -- OUTPUT view_p(v) -------------------------------------------------- *)

let view_enabled t v =
  View.equal v t.mbrshp_view && View.Id.lt (View.id t.current_view) (View.id v)

let view_effect t v =
  let msgs =
    if not t.gc then t.msgs
    else
      Proc.Map.filter_map
        (fun _q per_view ->
          let kept =
            View.Map.filter
              (fun w _ -> not (View.Id.lt (View.id w) (View.id t.current_view)))
              per_view
          in
          if View.Map.is_empty kept then None else Some kept)
        t.msgs
  in
  { t with msgs; current_view = v; last_sent = 0; last_dlvrd = Proc.Map.empty }

(* Number of buffered (sender, view) queues — observability for the
   garbage-collection tests. *)
let buffered_queues t =
  Proc.Map.fold (fun _ per_view acc -> acc + View.Map.cardinal per_view) t.msgs 0

(* -- INPUT send_p(m) ---------------------------------------------------- *)

let send_effect t m =
  let i = last_index t t.me t.current_view + 1 in
  msgs_set t t.me t.current_view i m

(* -- OUTPUT deliver_p(q, m) --------------------------------------------- *)

let deliver_next t q = msgs_get t q t.current_view (last_dlvrd t q + 1)

let deliver_enabled t q =
  match deliver_next t q with
  | None -> false
  | Some _ ->
      (* An end-point self-delivers a message only after sending it to
         the other view members via CO_RFIFO. *)
      (not (Proc.equal q t.me)) || last_dlvrd t q < t.last_sent

let deliver_effect t q =
  { t with last_dlvrd = Proc.Map.add q (last_dlvrd t q + 1) t.last_dlvrd }

(* -- OUTPUT co_rfifo.reliable_p(set) ------------------------------------ *)

(* The paper enables reliable_p for any superset of the current view's
   member set; the child layer pins the exact set. The executable base
   layer emits the canonical choice: the current member set itself. *)
let reliable_target t = View.set t.current_view

let reliable_enabled t ~target = not (Proc.Set.equal t.reliable_set target)
let reliable_effect t set = { t with reliable_set = set }

(* -- OUTPUT co_rfifo.send_p(set, view_msg) ------------------------------ *)

let view_msg_send_enabled t =
  (not (View.equal (view_msg_of t t.me) t.current_view))
  && Proc.Set.subset (View.set t.current_view) t.reliable_set

let view_msg_send_action t =
  Action.Rf_send
    (t.me, Proc.Set.remove t.me (View.set t.current_view), Msg.Wire.View_msg t.current_view)

let view_msg_send_effect t =
  { t with view_msg = Proc.Map.add t.me t.current_view t.view_msg }

(* -- OUTPUT co_rfifo.send_p(set, app_msg) ------------------------------- *)

let app_msg_send_enabled t =
  View.equal (view_msg_of t t.me) t.current_view
  && msgs_get t t.me t.current_view (t.last_sent + 1) <> None

let app_msg_send_action t =
  match msgs_get t t.me t.current_view (t.last_sent + 1) with
  | Some m ->
      Action.Rf_send (t.me, Proc.Set.remove t.me (View.set t.current_view), Msg.Wire.App m)
  | None -> invalid_arg "Wv_rfifo.app_msg_send_action: not enabled"

let app_msg_send_effect t = { t with last_sent = t.last_sent + 1 }

(* -- INPUT co_rfifo.deliver_{q,p}(m) ------------------------------------ *)

let recv t q (w : Msg.Wire.t) =
  match w with
  | Msg.Wire.View_msg v ->
      { t with view_msg = Proc.Map.add q v t.view_msg;
               last_rcvd = Proc.Map.add q 0 t.last_rcvd }
  | Msg.Wire.App m ->
      let i = last_rcvd t q + 1 in
      let t = msgs_set t q (view_msg_of t q) i m in
      { t with last_rcvd = Proc.Map.add q i t.last_rcvd }
  | Msg.Wire.Fwd { origin; view; index; msg } -> msgs_set t origin view index msg
  | Msg.Wire.Sync _ | Msg.Wire.Sync_batch _ | Msg.Wire.Bsync _ -> t

(* -- Self-stabilization (DESIGN.md §13) --------------------------------- *)

(* Local legitimacy guards: every state reachable by the Figure 9
   transitions satisfies all of them, so a [Some] answer witnesses
   corruption (or counter exhaustion) and never a protocol state. The
   checks only read state this automaton owns — they are decidable
   locally, without any exchange. *)
let self_check t =
  let bound = View.counter_bound in
  let vid v = View.Id.num (View.id v) in
  let over_bound =
    vid t.current_view >= bound || vid t.mbrshp_view >= bound
    || t.last_sent >= bound
    || Proc.Map.exists (fun _ n -> n >= bound) t.last_rcvd
    || Proc.Map.exists (fun _ n -> n >= bound) t.last_dlvrd
  in
  if over_bound then
    Some (Fmt.str "wraparound: counter at bound in view %a" View.Id.pp (View.id t.current_view))
  else if not (View.mem t.me t.current_view) then
    Some (Fmt.str "self-exclusion: %a not in current view %a" Proc.pp t.me View.pp t.current_view)
  else if not (View.mem t.me t.mbrshp_view) then
    Some (Fmt.str "self-exclusion: %a not in membership view %a" Proc.pp t.me View.pp t.mbrshp_view)
  else if View.Id.lt (View.id t.mbrshp_view) (View.id t.current_view) then
    Some
      (Fmt.str "view-ahead: current %a exceeds membership %a" View.Id.pp
         (View.id t.current_view) View.Id.pp (View.id t.mbrshp_view))
  else if t.last_sent > last_index t t.me t.current_view then
    Some
      (Fmt.str "seqno: last_sent %d beyond own queue end %d" t.last_sent
         (last_index t t.me t.current_view))
  else
    Proc.Map.fold
      (fun q n acc ->
        match acc with
        | Some _ -> acc
        | None ->
            let lp = longest_prefix t q t.current_view in
            if n > lp then
              Some (Fmt.str "seqno: last_dlvrd[%a] = %d beyond prefix %d" Proc.pp q n lp)
            else None)
      t.last_dlvrd None

(* Harness-only corruption effects (the fault layer's state-corruption
   class): each lands the state strictly past the matching guard, so a
   corruption here is detected by [self_check] before the automaton
   takes another locally controlled step. Mutations are computed
   relative to the current state — never absolute — so they corrupt at
   any point of a run. *)

let corrupt_last_dlvrd ~salt t =
  let k = 1 + (abs salt mod 8) in
  let lp = longest_prefix t t.me t.current_view in
  { t with last_dlvrd = Proc.Map.add t.me (lp + k) t.last_dlvrd }

let corrupt_last_sent ~salt t =
  let k = 1 + (abs salt mod 8) in
  { t with last_sent = last_index t t.me t.current_view + k }

let corrupt_view_id ~salt t =
  let a = View.id t.current_view and b = View.id t.mbrshp_view in
  let top = if View.Id.lt a b then b else a in
  let id = View.Id.succ_from ~origin:(abs salt mod 4) top in
  let cv = t.current_view in
  { t with
    current_view = View.make ~id ~set:(View.set cv) ~start_ids:(View.start_ids cv) }

let corrupt_wraparound ~salt t =
  (* A consistent state whose identifiers have exhausted the bounded
     range: current and membership views keep their sets but jump to
     the bound, as after an (impossibly long) legitimate run. *)
  let bump v =
    View.make
      ~id:
        (View.Id.make
           ~num:(View.counter_bound + (abs salt mod 8))
           ~origin:(View.Id.origin (View.id v)))
      ~set:(View.set v) ~start_ids:(View.start_ids v)
  in
  { t with current_view = bump t.current_view; mbrshp_view = bump t.mbrshp_view }

let corrupt_payload ~salt t =
  (* Scribble the newest buffered message of the first non-empty queue:
     deliberately NOT locally detectable — receivers already filed the
     genuine copy, so the global §6 invariants catch the divergence
     instead (the undetected-corruption witness). No-op when nothing is
     buffered. *)
  let scribbled = Msg.App_msg.make (Fmt.str "corrupt-%d" (abs salt)) in
  let pick =
    Proc.Map.fold
      (fun q by_view acc ->
        match acc with
        | Some _ -> acc
        | None ->
            View.Map.fold
              (fun v q_msgs acc ->
                match acc with
                | Some _ -> acc
                | None -> (
                    match Int_map.max_binding_opt q_msgs with
                    | Some (i, _) -> Some (q, v, i)
                    | None -> None))
              by_view None)
      t.msgs None
  in
  match pick with
  | Some (q, v, i) -> msgs_set t q v i scribbled
  | None -> t
