(* Component packaging of the end-point automata, at each inheritance
   layer, plus the crash/recovery layer of paper §8.

   [`Wv]   packages WV_RFIFO_p alone (Figure 9);
   [`Vs]   packages VS_RFIFO+TS_p (Figure 10) — no application blocking;
   [`Full] packages GCS_p = VS_RFIFO+TS+SD_p (Figure 11).

   A crashed end-point produces no outputs and ignores every input
   except recover, which restarts the automaton from its initial state
   (no stable storage, as in §8). *)

open Vsgc_types

type layer = [ `Wv | `Vs | `Full ]

type t = { g : Gcs.t; layer : layer; crashed : bool }

let initial ?strategy ?gc ?compact_sync ?hierarchy ?mutation ~layer me =
  { g = Gcs.initial ?strategy ?gc ?compact_sync ?hierarchy ?mutation me;
    layer; crashed = false }

let me st = Gcs.me st.g
let gcs st = st.g
let vs st = st.g.Gcs.vs
let wv st = (vs st).Vs_rfifo_ts.wv
let crashed st = st.crashed
let current_view st = (wv st).Wv_rfifo.current_view

let outputs st =
  if st.crashed then []
  else
    let g = st.g in
    let v = g.Gcs.vs in
    let w = v.Vs_rfifo_ts.wv in
    let p = w.Wv_rfifo.me in
    let acc = ref [] in
    let add a = acc := a :: !acc in
    let target =
      match st.layer with
      | `Wv -> Wv_rfifo.reliable_target w
      | `Vs | `Full -> Vs_rfifo_ts.reliable_target v
    in
    if Wv_rfifo.reliable_enabled w ~target then add (Action.Rf_reliable (p, target));
    if Wv_rfifo.view_msg_send_enabled w then add (Wv_rfifo.view_msg_send_action w);
    if Wv_rfifo.app_msg_send_enabled w then add (Wv_rfifo.app_msg_send_action w);
    (match st.layer with
    | `Wv -> ()
    | `Vs ->
        if Vs_rfifo_ts.sync_send_enabled v then add (Vs_rfifo_ts.sync_send_action v);
        if Vs_rfifo_ts.marker_send_enabled v then add (Vs_rfifo_ts.marker_send_action v);
        List.iter add (Vs_rfifo_ts.batch_sends v);
        List.iter (fun c -> add (Vs_rfifo_ts.fwd_action v c)) (Vs_rfifo_ts.fwd_candidates v)
    | `Full ->
        if Gcs.block_enabled g then add (Action.Block p);
        if Gcs.sync_send_enabled g then add (Vs_rfifo_ts.sync_send_action v);
        if Gcs.marker_send_enabled g then add (Vs_rfifo_ts.marker_send_action v);
        List.iter add (Vs_rfifo_ts.batch_sends v);
        List.iter (fun c -> add (Vs_rfifo_ts.fwd_action v c)) (Vs_rfifo_ts.fwd_candidates v));
    Proc.Set.iter
      (fun q ->
        let restricted =
          match st.layer with `Wv -> true | `Vs | `Full -> Vs_rfifo_ts.deliver_restriction v q
        in
        if restricted && Wv_rfifo.deliver_enabled w q then
          match Wv_rfifo.deliver_next w q with
          | Some m -> add (Action.App_deliver (p, q, m))
          | None -> ())
      (Wv_rfifo.known_senders w);
    let v' = w.Wv_rfifo.mbrshp_view in
    if Wv_rfifo.view_enabled w v' then begin
      match st.layer with
      | `Wv -> add (Action.App_view (p, v', Proc.Set.empty))
      | `Vs | `Full -> (
          match Vs_rfifo_ts.view_ready v v' with
          | Some tset -> add (Action.App_view (p, v', tset))
          | None -> ())
    end;
    !acc

let accepts p (a : Action.t) =
  match a with
  | Action.App_send (q, _)
  | Action.Block_ok q
  | Action.Mb_start_change (q, _, _)
  | Action.Mb_view (q, _)
  | Action.Crash q
  | Action.Recover q -> Proc.equal p q
  | Action.Rf_deliver (_, q, _) -> Proc.equal p q
  | _ -> false

let lift_wv st f = { st with g = Gcs.lift st.g (fun v -> Vs_rfifo_ts.lift v f) }
let lift_vs st f = { st with g = Gcs.lift st.g f }

(* -- Self-stabilization (DESIGN.md §13) --------------------------------- *)

type corruption = Last_dlvrd | Last_sent | View_id | Wraparound | Payload

let all_corruptions = [ Last_dlvrd; Last_sent; View_id; Wraparound; Payload ]
let detectable_corruptions = [ Last_dlvrd; Last_sent; View_id; Wraparound ]

let corruption_to_string = function
  | Last_dlvrd -> "last_dlvrd"
  | Last_sent -> "last_sent"
  | View_id -> "view_id"
  | Wraparound -> "wraparound"
  | Payload -> "payload"

let corruption_of_string = function
  | "last_dlvrd" -> Some Last_dlvrd
  | "last_sent" -> Some Last_sent
  | "view_id" -> Some View_id
  | "wraparound" -> Some Wraparound
  | "payload" -> Some Payload
  | _ -> None

let corrupt ~salt field st =
  if st.crashed then invalid_arg "Endpoint.corrupt: end-point is crashed";
  lift_wv st (fun w ->
      match field with
      | Last_dlvrd -> Wv_rfifo.corrupt_last_dlvrd ~salt w
      | Last_sent -> Wv_rfifo.corrupt_last_sent ~salt w
      | View_id -> Wv_rfifo.corrupt_view_id ~salt w
      | Wraparound -> Wv_rfifo.corrupt_wraparound ~salt w
      | Payload -> Wv_rfifo.corrupt_payload ~salt w)

let self_check st =
  if st.crashed then None
  else
    match Wv_rfifo.self_check (wv st) with
    | Some _ as r -> r
    | None -> (
        match st.layer with
        | `Wv -> None
        | `Vs | `Full -> Vs_rfifo_ts.self_check (vs st))

let apply st (a : Action.t) =
  let p = me st in
  if st.crashed then
    match a with
    | Action.Recover q when Proc.equal p q ->
        initial ~strategy:(vs st).Vs_rfifo_ts.strategy ~gc:(wv st).Wv_rfifo.gc
          ~compact_sync:(vs st).Vs_rfifo_ts.compact_sync
          ?hierarchy:(vs st).Vs_rfifo_ts.hierarchy
          ?mutation:(vs st).Vs_rfifo_ts.mutation ~layer:st.layer p
    | _ -> st
  else
    match a with
    (* inputs *)
    | Action.App_send (_, m) -> lift_wv st (fun w -> Wv_rfifo.send_effect w m)
    | Action.Mb_view (_, v) -> lift_wv st (fun w -> Wv_rfifo.mbrshp_view_effect w v)
    | Action.Mb_start_change (_, cid, set) -> (
        match st.layer with
        | `Wv -> st
        | `Vs | `Full -> lift_vs st (fun v -> Vs_rfifo_ts.start_change_effect v ~cid ~set))
    | Action.Block_ok _ ->
        if st.layer = `Full then { st with g = Gcs.block_ok_effect st.g } else st
    | Action.Rf_deliver (q, _, w) -> (
        match (w, st.layer) with
        | Msg.Wire.Sync { cid; view; cut }, (`Vs | `Full) ->
            lift_vs st (fun v -> Vs_rfifo_ts.recv_sync v q ~cid ~view ~cut)
        | Msg.Wire.Sync_batch entries, (`Vs | `Full) ->
            lift_vs st (fun v -> Vs_rfifo_ts.recv_batch v q entries)
        | (Msg.Wire.Sync _ | Msg.Wire.Sync_batch _), `Wv -> st
        | _ -> lift_wv st (fun wst -> Wv_rfifo.recv wst q w))
    | Action.Crash _ -> { st with crashed = true }
    | Action.Recover _ -> st
    (* own outputs *)
    | Action.Block _ -> { st with g = Gcs.block_effect st.g }
    | Action.Rf_reliable (_, set) -> lift_wv st (fun w -> Wv_rfifo.reliable_effect w set)
    | Action.Rf_send (_, _, Msg.Wire.View_msg _) -> lift_wv st Wv_rfifo.view_msg_send_effect
    | Action.Rf_send (_, _, Msg.Wire.App _) -> lift_wv st Wv_rfifo.app_msg_send_effect
    | Action.Rf_send (_, dests, Msg.Wire.Sync _) ->
        lift_vs st (fun v -> Vs_rfifo_ts.sync_send_effect_for v ~dests)
    | Action.Rf_send (_, dests, Msg.Wire.Sync_batch entries) ->
        lift_vs st (fun v -> Vs_rfifo_ts.batch_send_effect v ~dests ~entries)
    | Action.Rf_send (_, dests, Msg.Wire.Fwd f) ->
        lift_vs st (fun v ->
            Vs_rfifo_ts.fwd_effect v
              { Vs_rfifo_ts.dests; origin = f.origin; fwd_view = f.view;
                index = f.index; payload = f.msg })
    | Action.App_deliver (_, q, _) -> lift_wv st (fun w -> Wv_rfifo.deliver_effect w q)
    | Action.App_view (_, v, _) ->
        (* child effects first, parent's last, in one atomic step *)
        let st = if st.layer = `Full then { st with g = Gcs.view_effect st.g } else st in
        let st =
          match st.layer with
          | `Wv -> st
          | `Vs | `Full -> lift_vs st (fun vs -> Vs_rfifo_ts.view_effect vs v)
        in
        lift_wv st (fun w -> Wv_rfifo.view_effect w v)
    | _ -> st

(* Everything the end-point tower at p reads or writes is co-located at
   p: its share of any of its actions (inputs and outputs alike) is the
   Proc_state p cell. *)
let footprint p (a : Action.t) =
  let open Vsgc_ioa.Footprint in
  match a with
  | Action.App_send (q, _) | Action.Block_ok q | Action.Mb_start_change (q, _, _)
  | Action.Mb_view (q, _) | Action.Crash q | Action.Recover q
  | Action.Rf_reliable (q, _) | Action.Rf_send (q, _, _)
  | Action.App_deliver (q, _, _) | Action.App_view (q, _, _) | Action.Block q
    when Proc.equal p q -> rw [ Proc_state p ]
  | Action.Rf_deliver (_, q, _) when Proc.equal p q -> rw [ Proc_state p ]
  | _ -> empty

(* Static output signature, by inheritance layer: synchronization
   traffic (Sync, Sync_batch, Fwd) appears from `Vs up, the blocking
   protocol's block() only at `Full. *)
let emits ~layer p (a : Action.t) =
  match a with
  | Action.Rf_reliable (q, _) | Action.App_deliver (q, _, _)
  | Action.App_view (q, _, _) -> Proc.equal p q
  | Action.Block q -> layer = `Full && Proc.equal p q
  | Action.Rf_send (q, _, w) ->
      Proc.equal p q
      && (match (Msg.Wire.kind w, layer) with
         | (Msg.Wire.K_view_msg | Msg.Wire.K_app), _ -> true
         | (Msg.Wire.K_sync | Msg.Wire.K_sync_batch | Msg.Wire.K_fwd), (`Vs | `Full)
           -> true
         | (Msg.Wire.K_sync | Msg.Wire.K_sync_batch | Msg.Wire.K_fwd), `Wv -> false
         | Msg.Wire.K_bsync, _ -> false)
  | _ -> false

(* The whole end-point tower at [p] is one Proc_state slice, matching
   the footprint's granularity. *)
let observe p (st : t) =
  [ (Vsgc_ioa.Footprint.Proc_state p, Vsgc_ioa.Component.digest st) ]

let def ?strategy ?gc ?compact_sync ?hierarchy ?mutation ?(layer = `Full) p :
    t Vsgc_ioa.Component.def =
  {
    name = Fmt.str "gcs_%a" Proc.pp p;
    init = initial ?strategy ?gc ?compact_sync ?hierarchy ?mutation ~layer p;
    accepts = accepts p;
    outputs;
    apply;
    footprint = footprint p;
    emits = emits ~layer p;
    observe = observe p;
  }

let component ?strategy ?gc ?compact_sync ?hierarchy ?mutation ?layer p =
  let d = def ?strategy ?gc ?compact_sync ?hierarchy ?mutation ?layer p in
  let r = ref d.Vsgc_ioa.Component.init in
  (Vsgc_ioa.Component.pack_with_ref d r, r)
