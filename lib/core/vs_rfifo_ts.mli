(** The virtually synchronous reliable FIFO multicast and transitional
    set end-point automaton VS_RFIFO+TS_p (paper §5.2, Figure 10), a
    child of {!Wv_rfifo}.

    On a start_change the end-point reliably multicasts a
    synchronization message tagged with the locally unique start_change
    identifier, carrying its current view and its cut. Because the
    membership view itself carries the [startId] map, all end-points
    moving from view v to v' select the same synchronization messages —
    no pre-agreed global tag, so this round runs in parallel with the
    membership's. *)

open Vsgc_types
module Sc_map : Map.S with type key = int
module Sc_set : Set.S with type elt = int

module Fwd_set : Set.S with type elt = Proc.t * Proc.t * View.t * int
(** The paper's forwarded_set: (destination, origin, view, index). *)

type sync = { view : View.t; cut : Msg.Cut.t }
(** The content of a synchronization message. *)

(** Deliberate, opt-in weakenings of the §5 algorithm — test
    infrastructure for the schedule explorer, which must find the
    interleavings on which each one violates the specifications. *)
type mutation =
  | No_sync_wait
      (** install a view as soon as the own synchronization message is
          out, without waiting for the peers' — breaks Virtual
          Synchrony on schedules where a peer committed to messages
          this end-point has not delivered *)

type t = {
  wv : Wv_rfifo.t;  (** parent state; only parent effects modify it *)
  start_change : (View.Sc_id.t * Proc.Set.t) option;
  sync_msgs : sync Sc_map.t Proc.Map.t;  (** sync_msg[q][cid] *)
  forwarded : Fwd_set.t;
  strategy : Forwarding.kind;
  compact_sync : bool;
      (** §5.2.4 optimization: peers outside the current view receive a
          small marker instead of the full view and cut *)
  marker_sent : Sc_set.t;
  hierarchy : int option;
      (** §9 two-tier hierarchy: with [Some g], members send their
          synchronization messages only to their group leader (by id
          modulo g), and leaders exchange and disseminate aggregated
          batches — O(n + g²) messages instead of O(n²), for extra
          latency *)
  am_leader : bool;
  leader_dests : Proc.Set.t;
  group_dests : Proc.Set.t;
  change_set : Proc.Set.t;
  prior_cids : View.Sc_id.t Proc.Map.t;
      (** the last installed view's startId map (accumulated): a sync is
          fresh (relevant to a pending change) iff strictly newer *)
  shipped_l : Msg.Wire.sync_entry list;
  shipped_g : Msg.Wire.sync_entry list;
  mutation : mutation option;  (** seeded bug, for the schedule explorer *)
}

val initial :
  ?strategy:Forwarding.kind -> ?gc:bool -> ?compact_sync:bool -> ?hierarchy:int ->
  ?mutation:mutation -> Proc.t -> t
(** [strategy] defaults to {!Forwarding.Simple}; [compact_sync] to
    [false] (the unoptimized Figure 10 automaton); [hierarchy] to
    direct all-to-all synchronization. *)

val leader_of : g:int -> Proc.Set.t -> Proc.t -> Proc.t
val all_leaders : g:int -> Proc.Set.t -> Proc.Set.t
val is_leader : t -> bool

val me : t -> Proc.t
val current_view : t -> View.t
val mbrshp_view : t -> View.t
val sync_msg : t -> Proc.t -> View.Sc_id.t -> sync option
val latest_sync : t -> Proc.t -> (View.Sc_id.t * sync) option
val own_sync : t -> sync option
(** This end-point's synchronization message for the pending
    start_change, if already sent. *)

(** {1 Transitions (Figure 10)} *)

val start_change_effect : t -> cid:View.Sc_id.t -> set:Proc.Set.t -> t

val reliable_target : t -> Proc.Set.t
(** The child pins co_rfifo.reliable's parameter: current members
    united with the start_change set. *)

val sync_send_enabled : t -> bool
val sync_cut : t -> Msg.Cut.t
(** cut(q) = LongestPrefixOf(msgs[q][current_view]): commit only to
    buffered messages (the liveness argument of §5.2.1). *)

val sync_send_action : t -> Action.t
val sync_send_effect : t -> t

val full_sync_dests : t -> Proc.Set.t
val marker_dests : t -> Proc.Set.t
val marker_send_enabled : t -> bool
val marker_send_action : t -> Action.t
(** §5.2.4: the "I am not in your transitional set" marker — a sync
    whose view is the sender's initial singleton (never any receiver's
    current view) with an empty cut. *)

val marker_send_effect : t -> t

val sync_send_effect_for : t -> dests:Proc.Set.t -> t
(** Dispatch an own Sync-send effect by destination set: markers go
    wholly outside the current view, full syncs do not. *)

val recv_sync : t -> Proc.t -> cid:View.Sc_id.t -> view:View.t -> cut:Msg.Cut.t -> t

val recv_batch : t -> Proc.t -> Msg.Wire.sync_entry list -> t
(** A leader's aggregated batch: record every entry. *)

val fresh_entry : t -> Proc.t -> Msg.Wire.sync_entry option
(** The latest sync of q, when strictly newer than the change-start
    snapshot. *)

val batch_sends : t -> Action.t list
(** The leader's due batches (§9): leader-ward once its own group is
    covered by fresh syncs, group-ward once the whole change set is;
    re-shipped whenever the derived content changes. *)

val batch_send_effect : t -> dests:Proc.Set.t -> entries:Msg.Wire.sync_entry list -> t

val transitional_set : t -> View.t -> Proc.Set.t
(** Members of v'.set ∩ current_view.set whose synchronization message
    tagged v'.startId(q) names this same current view (Property 4.1). *)

val deliver_restriction : t -> Proc.t -> bool
(** The child's precondition on deliver_p(q, m): once the own cut is
    out, never deliver beyond it (before the membership view is known)
    or beyond the transitional members' maximum (after). *)

val view_ready : t -> View.t -> Proc.Set.t option
(** The child's precondition on view_p(v', T): [Some T] when v' names
    this end-point's pending start_change id (obsolete views are
    skipped), all relevant synchronization messages are in, and the
    delivered counts equal the agreed cuts. *)

val view_effect : t -> View.t -> t
(** Child effect of view_p: clear the pending start_change. (The §9
    freshness baseline advances only at the NEXT start_change, so that
    a leader keeps relaying this change's syncs to laggards after it
    has itself installed the view.) *)

(** {1 Forwarding (§5.2.2)} *)

type fwd_candidate = {
  dests : Proc.Set.t;
  origin : Proc.t;
  fwd_view : View.t;
  index : int;
  payload : Msg.App_msg.t;
}

val fwd_candidates : t -> fwd_candidate list
(** Enabled forwards under the configured strategy, minus the
    already-forwarded set. *)

val fwd_action : t -> fwd_candidate -> Action.t
val fwd_effect : t -> fwd_candidate -> t

val lift : t -> (Wv_rfifo.t -> Wv_rfifo.t) -> t
(** Apply a parent transition (the child never writes parent state
    directly — the inheritance discipline of §2). *)

(** {1 Self-stabilization (DESIGN.md §13)} *)

val self_check : t -> string option
(** The child's bounded-counter guard (start_change identifiers at
    {!Vsgc_types.View.counter_bound}); the parent's {!Wv_rfifo.self_check}
    covers views and sequence numbers. *)
