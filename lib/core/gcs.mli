(** The complete group-communication end-point automaton
    GCS_p = VS_RFIFO+TS+SD_p (paper §5.3, Figure 11), a child of
    {!Vs_rfifo_ts} adding Self Delivery via client blocking. *)

type block_status = Unblocked | Requested | Blocked

type t = { vs : Vs_rfifo_ts.t; block_status : block_status }

val initial :
  ?strategy:Forwarding.kind -> ?gc:bool -> ?compact_sync:bool -> ?hierarchy:int ->
  ?mutation:Vs_rfifo_ts.mutation -> Vsgc_types.Proc.t -> t
val me : t -> Vsgc_types.Proc.t

val block_enabled : t -> bool
(** OUTPUT block_p(): a change is pending and the client is unblocked. *)

val block_effect : t -> t
val block_ok_effect : t -> t

val sync_send_enabled : t -> bool
(** The child's extra precondition: the client must be blocked before
    the cut is published, so the cut covers every client message of the
    current view — the key to Self Delivery (Invariant 6.13). *)

val marker_send_enabled : t -> bool
(** The §5.2.4 marker, gated by blocking like the full sync message. *)

val view_effect : t -> t
(** Child effect of view_p: unblock the client. *)

val lift : t -> (Vs_rfifo_ts.t -> Vs_rfifo_ts.t) -> t
