(* The virtually synchronous reliable FIFO multicast and transitional
   set end-point automaton VS_RFIFO+TS_p (paper §5.2, Figure 10), a
   child of WV_RFIFO_p.

   On a start_change notification the end-point reliably sends its
   peers a synchronization message tagged with the (locally unique)
   start_change identifier, carrying its current view and a cut: for
   each sender, the index of the last message it commits to deliver
   before installing any view whose startId maps this end-point to that
   identifier. Because the membership view itself carries the startId
   map, all end-points moving from view v to view v' select the same
   set of synchronization messages — no pre-agreed global tag is needed,
   which is what lets the virtual-synchrony round run in parallel with
   the membership round. *)

open Vsgc_types
module Sc_map = Map.Make (Int)
module Sc_set = Set.Make (Int)

module Fwd_key = struct
  (* (destination, origin, view, index) — the paper's forwarded_set *)
  type t = Proc.t * Proc.t * View.t * int

  let compare (a, b, v, i) (a', b', v', i') =
    match Proc.compare a a' with
    | 0 -> (
        match Proc.compare b b' with
        | 0 -> ( match View.compare v v' with 0 -> Int.compare i i' | r -> r)
        | r -> r)
    | r -> r
end

module Fwd_set = Set.Make (Fwd_key)

type sync = { view : View.t; cut : Msg.Cut.t }

(* Deliberate, opt-in protocol mutations (§5 algorithm weakenings).
   Test infrastructure only: the schedule explorer must demonstrate it
   finds the interleavings on which each weakening breaks the spec. *)
type mutation =
  | No_sync_wait
      (* skip the TS_p wait for the peers' synchronization messages:
         install a view as soon as the own one is out — virtual
         synchrony then breaks whenever a peer committed to messages
         this end-point has not delivered *)

type t = {
  wv : Wv_rfifo.t;  (* parent state; only parent effects modify it *)
  start_change : (View.Sc_id.t * Proc.Set.t) option;
  sync_msgs : sync Sc_map.t Proc.Map.t;  (* sync_msg[q][cid] *)
  forwarded : Fwd_set.t;
  strategy : Forwarding.kind;
  compact_sync : bool;
      (* §5.2.4 optimization: processes outside the current view cannot
         be in each other's transitional sets, so they only need a
         small marker ("I am not in your transitional set") instead of
         the full view and cut *)
  marker_sent : Sc_set.t;  (* start_change ids whose marker went out *)
  (* §9 two-tier hierarchy: with [hierarchy = Some g], the start_change
     set is partitioned into g groups (by id modulo g); members send
     their synchronization messages only to their group leader (the
     minimum member), and leaders aggregate them into batches exchanged
     leader-to-leader and disseminated within each group — trading one
     round of latency per tier for O(n + g²) messages instead of O(n²). *)
  hierarchy : int option;
  am_leader : bool;  (* per the last change; persists so relays keep
                        flowing to laggards after this leader installs *)
  leader_dests : Proc.Set.t;  (* the other groups' leaders, per the last change *)
  group_dests : Proc.Set.t;  (* this process's group peers, per the last change *)
  change_set : Proc.Set.t;  (* the start_change set of the last change *)
  prior_cids : View.Sc_id.t Proc.Map.t;
      (* the startId map of the last installed view (accumulated): a
         sync is FRESH (relevant to a pending change) iff its identifier
         is strictly newer than the one consumed by the current view —
         the hierarchical analogue of the paper's "which synchronization
         messages to consider" problem, answerable without agreement
         because installed views carry their startId maps *)
  shipped_l : Msg.Wire.sync_entry list;  (* last leader-ward batch shipped *)
  shipped_g : Msg.Wire.sync_entry list;  (* last group-ward batch shipped *)
  mutation : mutation option;  (* seeded bug, for the schedule explorer *)
}

let initial ?(strategy = Forwarding.Simple) ?gc ?(compact_sync = false) ?hierarchy
    ?mutation me =
  {
    wv = Wv_rfifo.initial ?gc me;
    start_change = None;
    sync_msgs = Proc.Map.empty;
    forwarded = Fwd_set.empty;
    strategy;
    compact_sync;
    marker_sent = Sc_set.empty;
    hierarchy;
    am_leader = false;
    leader_dests = Proc.Set.empty;
    group_dests = Proc.Set.empty;
    change_set = Proc.Set.empty;
    prior_cids = Proc.Map.empty;
    shipped_l = [];
    shipped_g = [];
    mutation;
  }

let me t = t.wv.Wv_rfifo.me
let current_view t = t.wv.Wv_rfifo.current_view
let mbrshp_view t = t.wv.Wv_rfifo.mbrshp_view

let sync_msg t q cid =
  match Proc.Map.find_opt q t.sync_msgs with
  | None -> None
  | Some per_cid -> Sc_map.find_opt cid per_cid

let set_sync_msg t q cid s =
  let per_cid =
    match Proc.Map.find_opt q t.sync_msgs with None -> Sc_map.empty | Some x -> x
  in
  { t with sync_msgs = Proc.Map.add q (Sc_map.add cid s per_cid) t.sync_msgs }

(* The latest (largest-cid) synchronization message received from q. *)
let latest_sync t q =
  match Proc.Map.find_opt q t.sync_msgs with
  | None -> None
  | Some per_cid -> (
      match Sc_map.max_binding_opt per_cid with
      | None -> None
      | Some (cid, s) -> Some (cid, s))

let own_sync t =
  match t.start_change with
  | None -> None
  | Some (cid, _) -> sync_msg t (me t) cid

(* -- Two-tier hierarchy helpers (§9) ------------------------------------- *)

(* Partition [set] into g groups by identifier modulo g; each group's
   leader is its minimum member. *)
let group_members ~g set p =
  Proc.Set.filter (fun q -> Proc.to_int q mod g = Proc.to_int p mod g) set

let leader_of ~g set p =
  match Proc.Set.min_elt_opt (group_members ~g set p) with
  | Some l -> l
  | None -> p

let all_leaders ~g set =
  Proc.Set.fold (fun q acc -> Proc.Set.add (leader_of ~g set q) acc) set Proc.Set.empty

let is_leader t = t.hierarchy <> None && t.am_leader

(* -- INPUT mbrshp.start_change_p(id, set) ------------------------------- *)

let start_change_effect t ~cid ~set =
  let t = { t with start_change = Some (cid, set) } in
  match t.hierarchy with
  | Some g when Proc.Set.mem (me t) set ->
      { t with
        am_leader = Proc.equal (leader_of ~g set (me t)) (me t);
        leader_dests = Proc.Set.remove (leader_of ~g set (me t)) (all_leaders ~g set);
        group_dests = Proc.Set.remove (me t) (group_members ~g set (me t));
        change_set = set;
        (* freshness baseline: the syncs consumed by the view we hold
           NOW. It must not advance before the next change — relays for
           this change keep serving laggards after we install. *)
        prior_cids =
          Proc.Set.fold
            (fun q acc -> Proc.Map.add q (View.start_id (current_view t) q) acc)
            (View.set (current_view t))
            t.prior_cids;
        shipped_l = [];
        shipped_g = [] }
  | _ -> t

(* -- OUTPUT co_rfifo.reliable_p(set): the child pins the parameter ------ *)

let reliable_target t =
  match t.start_change with
  | None -> View.set (current_view t)
  | Some (_, set) -> Proc.Set.union (View.set (current_view t)) set

(* -- OUTPUT co_rfifo.send_p(set, sync_msg) ------------------------------ *)

let sync_send_enabled t =
  match t.start_change with
  | None -> false
  | Some (cid, set) ->
      Proc.Set.subset set t.wv.Wv_rfifo.reliable_set
      && sync_msg t (me t) cid = None

let sync_cut t =
  (* cut(q) = LongestPrefixOf(msgs[q][current_view]) for view members:
     commit only to messages already buffered (liveness, §5.2.1). *)
  let v = current_view t in
  Proc.Set.fold
    (fun q acc -> Msg.Cut.set acc q (Wv_rfifo.longest_prefix t.wv q v))
    (View.set v) Msg.Cut.empty

(* The full synchronization message goes to the start_change set; with
   compact_sync, only to the peers sharing the current view; with the
   hierarchy, only to the group leader (who relays). *)
let full_sync_dests t =
  match t.start_change with
  | Some (_, set) -> (
      match t.hierarchy with
      | Some g -> Proc.Set.remove (me t) (Proc.Set.singleton (leader_of ~g set (me t)))
      | None ->
          let all = Proc.Set.remove (me t) set in
          if t.compact_sync then Proc.Set.inter all (View.set (current_view t)) else all)
  | None -> Proc.Set.empty

(* §5.2.4: the marker for peers outside the current view — a sync
   tagged with the start_change id whose view is the sender's initial
   singleton (which no receiver can ever have as its current view, so
   the sender is never placed in their transitional sets) and an empty
   cut. Semantically "I am not in your transitional set", and small. *)
let marker_dests t =
  match t.start_change with
  | Some (_, set) ->
      Proc.Set.diff (Proc.Set.remove (me t) set) (View.set (current_view t))
  | None -> Proc.Set.empty

let marker_send_enabled t =
  t.compact_sync && t.hierarchy = None
  && (match t.start_change with
     | Some (cid, set) ->
         Proc.Set.subset set t.wv.Wv_rfifo.reliable_set
         && (not (Sc_set.mem cid t.marker_sent))
         && not (Proc.Set.is_empty (marker_dests t))
     | None -> false)

let marker_send_action t =
  match t.start_change with
  | Some (cid, _) ->
      Action.Rf_send
        ( me t,
          marker_dests t,
          Msg.Wire.Sync { cid; view = View.initial (me t); cut = Msg.Cut.empty } )
  | None -> invalid_arg "Vs_rfifo_ts.marker_send_action: no start_change"

let marker_send_effect t =
  match t.start_change with
  | Some (cid, _) -> { t with marker_sent = Sc_set.add cid t.marker_sent }
  | None -> t

let sync_send_action t =
  match t.start_change with
  | Some (cid, _) ->
      Action.Rf_send
        ( me t,
          full_sync_dests t,
          Msg.Wire.Sync { cid; view = current_view t; cut = sync_cut t } )
  | None -> invalid_arg "Vs_rfifo_ts.sync_send_action: no start_change"

let sync_send_effect t =
  match t.start_change with
  | Some (cid, _) ->
      set_sync_msg t (me t) cid { view = current_view t; cut = sync_cut t }
  | None -> t

(* Dispatch an own Sync-send effect. Marker sends exist only in
   compact mode without the hierarchy, and always target exactly the
   peers outside the current view; everything else is the full sync.
   (Under the hierarchy the full sync goes to the group leader, which
   may itself lie outside the current view — hence the exact-set match,
   not a subset test.) *)
let sync_send_effect_for t ~dests =
  if
    t.compact_sync && t.hierarchy = None
    && (not (Proc.Set.is_empty dests))
    && Proc.Set.equal dests (marker_dests t)
  then marker_send_effect t
  else sync_send_effect t

(* -- INPUT co_rfifo.deliver_{q,p}(sync_msg) ----------------------------- *)

let recv_sync t q ~cid ~view ~cut = set_sync_msg t q cid { view; cut }

(* A batch from a leader: record every entry. *)
let recv_batch t _q entries =
  List.fold_left
    (fun t (e : Msg.Wire.sync_entry) ->
      set_sync_msg t e.Msg.Wire.origin e.Msg.Wire.cid
        { view = e.Msg.Wire.sview; cut = e.Msg.Wire.cut })
    t entries

(* -- OUTPUT co_rfifo.send_p(set, sync_batch): leader relaying (§9) ------- *)

(* The latest sync of q, provided it is FRESH — strictly newer than the
   snapshot taken when the current change began. *)
let fresh_entry t q =
  match latest_sync t q with
  | Some (cid, sm)
    when View.Sc_id.compare cid
           (Proc.Map.find_default ~default:View.Sc_id.zero q t.prior_cids)
         > 0 ->
      Some { Msg.Wire.origin = q; cid; sview = sm.view; cut = sm.cut }
  | _ -> None

(* A leader's batches are derived declaratively from its recorded
   synchronization messages: the leader-ward batch carries its own
   group's fresh syncs (shipped to the other leaders once the group is
   covered), the group-ward batch carries everyone's fresh syncs
   (shipped to its members once the whole change set is covered). A
   batch re-ships whenever its content changes — e.g. when a member
   replaces its sync because the membership changed its mind — so
   laggards are never stranded, at worst one extra batch per change. *)
let derive_batch t need =
  let entries = List.filter_map (fresh_entry t) (Proc.Set.elements need) in
  if List.length entries = Proc.Set.cardinal need then Some entries else None

let batch_sends t =
  if t.hierarchy = None || not t.am_leader then []
  else
    let own_group = Proc.Set.add (me t) t.group_dests in
    let mk dests need shipped =
      if Proc.Set.is_empty dests then None
      else
        match derive_batch t need with
        | Some entries when entries <> shipped ->
            Some (Action.Rf_send (me t, dests, Msg.Wire.Sync_batch entries))
        | _ -> None
    in
    List.filter_map Fun.id
      [
        mk t.leader_dests own_group t.shipped_l;
        mk t.group_dests t.change_set t.shipped_g;
      ]

(* Effect of an own batch send: record what was shipped on the matching
   direction (destination sets are disjoint, content may coincide). *)
let batch_send_effect t ~dests ~entries =
  if Proc.Set.equal dests t.leader_dests then { t with shipped_l = entries }
  else if Proc.Set.equal dests t.group_dests then { t with shipped_g = entries }
  else t

(* -- The transitional set for a prospective view v' --------------------- *)

(* Members of v'.set ∩ current_view.set whose synchronization message
   (tagged with v'.startId(q)) says they move to v' from this same
   current view. *)
let transitional_set t v' =
  let v = current_view t in
  Proc.Set.filter
    (fun q ->
      match sync_msg t q (View.start_id v' q) with
      | Some s -> View.equal s.view v
      | None -> false)
    (Proc.Set.inter (View.set v') (View.set v))

(* -- OUTPUT deliver_p(q, m): the child's restriction -------------------- *)

(* Figure 10: once the end-point has sent its own synchronization
   message, it may deliver messages only up to the committed cuts —
   its own before the membership view is known, the transitional-set
   members' maximum afterwards. *)
let deliver_restriction t q =
  match t.start_change with
  | None -> true
  | Some (cid, _) -> (
      match sync_msg t (me t) cid with
      | None -> true
      | Some own ->
          let next = Wv_rfifo.last_dlvrd t.wv q + 1 in
          let mb = mbrshp_view t in
          let mb_cid =
            if View.mem (me t) mb then Some (View.start_id mb (me t)) else None
          in
          if mb_cid <> Some cid then next <= Msg.Cut.get own.cut q
          else
            let s =
              Proc.Set.filter
                (fun r ->
                  match sync_msg t r (View.start_id mb r) with
                  | Some sm -> View.equal sm.view (current_view t)
                  | None -> false)
                (Proc.Set.inter (View.set mb) (View.set (current_view t)))
            in
            let cuts =
              Proc.Set.fold
                (fun r acc ->
                  match sync_msg t r (View.start_id mb r) with
                  | Some sm -> sm.cut :: acc
                  | None -> acc)
                s []
            in
            next <= Msg.Cut.max_over cuts q)

(* -- OUTPUT view_p(v, T): the child's restriction ----------------------- *)

let view_ready t v' =
  match t.start_change with
  | None -> None
  | Some (cid, _) ->
      if not (View.mem (me t) v') then None
      else if not (View.Sc_id.equal (View.start_id v' (me t)) cid) then
        (* prevents delivery of views already known to be obsolete *)
        None
      else
        let inter = Proc.Set.inter (View.set v') (View.set (current_view t)) in
        let all_syncs =
          match t.mutation with
          | Some No_sync_wait ->
              (* the seeded bug: only the own synchronization message is
                 awaited; peers' commitments are ignored *)
              sync_msg t (me t) (View.start_id v' (me t)) <> None
          | None ->
              Proc.Set.for_all (fun q -> sync_msg t q (View.start_id v' q) <> None) inter
        in
        if not all_syncs then None
        else
          let tset = transitional_set t v' in
          let cuts =
            Proc.Set.fold
              (fun r acc ->
                match sync_msg t r (View.start_id v' r) with
                | Some sm -> sm.cut :: acc
                | None -> acc)
              tset []
          in
          let delivered_all =
            Proc.Set.for_all
              (fun q -> Wv_rfifo.last_dlvrd t.wv q = Msg.Cut.max_over cuts q)
              (View.set (current_view t))
          in
          if delivered_all then Some tset else None

let view_effect t _v = { t with start_change = None }

(* -- OUTPUT co_rfifo.send_p(set, fwd_msg): strategies (§5.2.2) ---------- *)

type fwd_candidate = {
  dests : Proc.Set.t;
  origin : Proc.t;
  fwd_view : View.t;
  index : int;
  payload : Msg.App_msg.t;
}

(* Remove destinations already served; drop empty candidates. *)
let prune_forwarded t (c : fwd_candidate) =
  let dests =
    Proc.Set.filter
      (fun q -> not (Fwd_set.mem (q, c.origin, c.fwd_view, c.index) t.forwarded))
      c.dests
  in
  if Proc.Set.is_empty dests then None else Some { c with dests }

(* Simple strategy: forward to any peer whose latest synchronization
   message was sent in the same view as our own latest commitment and
   admits a gap below it, unless we know the peer has moved to a later
   view. Forwarding keeps going after we install the next view — peers
   still stuck behind the cut depend on it. *)
let simple_candidates t =
  match latest_sync t (me t) with
  | None -> []
  | Some (_, own) ->
      let v0 = own.view in
        Proc.Map.fold
          (fun q _ acc ->
            if Proc.equal q (me t) then acc
            else
              match latest_sync t q with
              | Some (_, sq) when View.equal sq.view v0 ->
                  let moved_on =
                    View.Id.lt (View.id v0) (View.id (Wv_rfifo.view_msg_of t.wv q))
                  in
                  if moved_on then acc
                  else
                    Proc.Set.fold
                      (fun r acc ->
                        if Proc.equal r q then acc
                        else
                          let lo = Msg.Cut.get sq.cut r and hi = Msg.Cut.get own.cut r in
                          let rec collect i acc =
                            if i > hi then acc
                            else
                              match Wv_rfifo.msgs_get t.wv r v0 i with
                              | Some m ->
                                  collect (i + 1)
                                    ({ dests = Proc.Set.singleton q; origin = r;
                                       fwd_view = v0; index = i; payload = m }
                                     :: acc)
                              | None -> collect (i + 1) acc
                          in
                          collect (lo + 1) acc)
                      (View.set v0) acc
              | _ -> acc)
          t.sync_msgs []

(* Min-copies strategy: with the membership view and all relevant
   synchronization messages in hand, the minimum-id member of the
   transitional set that holds a missing message forwards it to exactly
   the members that miss it. Only messages from non-members of T are
   forwarded (members of T deliver their own messages directly). *)
let min_copies_candidates t =
  let mb = mbrshp_view t in
  if not (View.mem (me t) mb) then []
  else
    match sync_msg t (me t) (View.start_id mb (me t)) with
    | Some own ->
        let v0 = own.view in
        let inter = Proc.Set.inter (View.set mb) (View.set v0) in
        let all_syncs =
          Proc.Set.for_all (fun q -> sync_msg t q (View.start_id mb q) <> None) inter
        in
        if not all_syncs then []
        else
          let tset =
            Proc.Set.filter
              (fun q ->
                match sync_msg t q (View.start_id mb q) with
                | Some s -> View.equal s.view v0
                | None -> false)
              inter
          in
          let cut_of u =
            match sync_msg t u (View.start_id mb u) with
            | Some s -> s.cut
            | None -> Msg.Cut.empty
          in
          Proc.Set.fold
            (fun r acc ->
              if Proc.Set.mem r tset then acc
              else
                let hi =
                  Proc.Set.fold (fun u m -> max m (Msg.Cut.get (cut_of u) r)) tset 0
                in
                let rec per_index i acc =
                  if i > hi then acc
                  else
                    let haves =
                      Proc.Set.filter (fun u -> Msg.Cut.get (cut_of u) r >= i) tset
                    in
                    let missing =
                      Proc.Set.filter (fun u -> Msg.Cut.get (cut_of u) r < i) tset
                    in
                    let acc =
                      match Proc.Set.min_elt_opt haves with
                      | Some u
                        when Proc.equal u (me t) && not (Proc.Set.is_empty missing) -> (
                          match Wv_rfifo.msgs_get t.wv r v0 i with
                          | Some m ->
                              { dests = missing; origin = r; fwd_view = v0;
                                index = i; payload = m }
                              :: acc
                          | None -> acc)
                      | _ -> acc
                    in
                    per_index (i + 1) acc
                in
                per_index 1 acc)
            (View.set v0) []
    | None -> []

let fwd_candidates t =
  let raw =
    match t.strategy with
    | Forwarding.Off -> []
    | Forwarding.Simple -> simple_candidates t
    | Forwarding.Min_copies -> min_copies_candidates t
  in
  List.filter_map (prune_forwarded t) raw

let fwd_action t (c : fwd_candidate) =
  Action.Rf_send
    ( me t,
      c.dests,
      Msg.Wire.Fwd { origin = c.origin; view = c.fwd_view; index = c.index; msg = c.payload } )

let fwd_effect t (c : fwd_candidate) =
  let forwarded =
    Proc.Set.fold
      (fun q acc -> Fwd_set.add (q, c.origin, c.fwd_view, c.index) acc)
      c.dests t.forwarded
  in
  { t with forwarded }

(* -- Lifting parent transitions ----------------------------------------- *)

let lift t f = { t with wv = f t.wv }

(* -- Self-stabilization (DESIGN.md §13) --------------------------------- *)

(* The child's own bounded counters: start_change identifiers. The
   parent's guards cover views and sequence numbers. *)
let self_check t =
  let bound = View.counter_bound in
  match t.start_change with
  | Some (cid, _) when cid >= bound ->
      Some (Fmt.str "wraparound: start_change id c%d at bound" cid)
  | _ ->
      if Proc.Map.exists (fun _ c -> c >= bound) t.prior_cids then
        Some "wraparound: recorded start_change id at bound"
      else None
