(* The blocking application client (paper Figure 12, CLIENT_p : SPEC),
   made executable and scriptable.

   The client sends the messages queued by the harness whenever it is
   not blocked, answers every block() with block_ok(), and then
   refrains from sending until a view is delivered. It logs everything
   it observes, which is what the integration tests and the liveness
   checks assert over. *)

open Vsgc_types

type block_status = Unblocked | Requested | Blocked

type t = {
  me : Proc.t;
  block_status : block_status;
  to_send : Msg.App_msg.t list;  (* oldest first *)
  send_while_requested : bool;
      (* the spec allows sending until blocked; scenarios may disable it *)
  sent : Msg.App_msg.t list;  (* newest first *)
  delivered : (Proc.t * Msg.App_msg.t) list;  (* newest first *)
  views : (View.t * Proc.Set.t) list;  (* newest first *)
  blocks_seen : int;
  crashed : bool;
}

let initial ?(send_while_requested = true) me =
  {
    me;
    block_status = Unblocked;
    to_send = [];
    send_while_requested;
    sent = [];
    delivered = [];
    views = [];
    blocks_seen = 0;
    crashed = false;
  }

(* -- Scripting API ------------------------------------------------------ *)

let push (r : t ref) payload =
  r := { !r with to_send = !r.to_send @ [ Msg.App_msg.make payload ] }

let push_many r payloads = List.iter (push r) payloads

let sent t = List.rev t.sent
let delivered t = List.rev t.delivered
let views t = List.rev t.views
let delivered_from t q = List.filter_map (fun (s, m) -> if Proc.equal s q then Some m else None) (delivered t)
let last_view t = match t.views with [] -> None | (v, tset) :: _ -> Some (v, tset)

(* -- Component ----------------------------------------------------------- *)

let outputs t =
  if t.crashed then []
  else
    let acc = if t.block_status = Requested then [ Action.Block_ok t.me ] else [] in
    match t.to_send with
    | m :: _
      when t.block_status = Unblocked
           || (t.block_status = Requested && t.send_while_requested) ->
        Action.App_send (t.me, m) :: acc
    | _ -> acc

let accepts me (a : Action.t) =
  match a with
  | Action.App_deliver (p, _, _) | Action.App_view (p, _, _) | Action.Block p
  | Action.Crash p | Action.Recover p -> Proc.equal p me
  | _ -> false

let apply t (a : Action.t) =
  if t.crashed then
    match a with Action.Recover p when Proc.equal p t.me -> initial ~send_while_requested:t.send_while_requested t.me | _ -> t
  else
    match a with
    | Action.App_send (_, m) -> (
        match t.to_send with
        | m' :: rest when Msg.App_msg.equal m m' ->
            { t with to_send = rest; sent = m :: t.sent }
        | _ -> t)
    | Action.Block_ok _ -> { t with block_status = Blocked }
    | Action.Block _ -> { t with block_status = Requested; blocks_seen = t.blocks_seen + 1 }
    | Action.App_deliver (_, q, m) -> { t with delivered = (q, m) :: t.delivered }
    | Action.App_view (_, v, tset) ->
        { t with views = (v, tset) :: t.views; block_status = Unblocked }
    | Action.Crash _ -> { t with crashed = true }
    | _ -> t

(* The client's whole state is co-located with its end-point at me:
   both live in the Proc_state me cell. *)
let footprint me (a : Action.t) =
  let open Vsgc_ioa.Footprint in
  match a with
  | Action.App_send (p, _) | Action.Block_ok p | Action.App_deliver (p, _, _)
  | Action.App_view (p, _, _) | Action.Block p | Action.Crash p | Action.Recover p
    when Proc.equal p me -> rw [ Proc_state me ]
  | _ -> empty

let emits me (a : Action.t) =
  match a with
  | Action.App_send (p, _) | Action.Block_ok p -> Proc.equal p me
  | _ -> false

(* All client state is co-located at [me] — one shadow slice. *)
let observe me (st : t) =
  [ (Vsgc_ioa.Footprint.Proc_state me, Vsgc_ioa.Component.digest st) ]

let def me : t Vsgc_ioa.Component.def =
  {
    name = Fmt.str "client_%a" Proc.pp me;
    init = initial me;
    accepts = accepts me;
    outputs;
    apply;
    footprint = footprint me;
    emits = emits me;
    observe = observe me;
  }

let component ?send_while_requested me =
  let r = ref (initial ?send_while_requested me) in
  (Vsgc_ioa.Component.pack_with_ref (def me) r, r)
