(** The within-view reliable FIFO multicast end-point automaton
    WV_RFIFO_p (paper §5.1, Figure 9) — the base layer of the
    inheritance tower.

    It forwards membership views to the application unchanged
    (preserving Local Monotonicity and Self Inclusion) and synchronizes
    message delivery with views so that every message is delivered in
    the view in which it was sent: a [View_msg] marker travels down
    each CO_RFIFO stream before any application message of a new view,
    and received messages are filed under the sender's latest marker.

    Each [*_enabled]/[*_action]/[*_effect] triple below renders one
    pre:/eff: block of Figure 9; child layers conjoin their own
    preconditions and prepend their own effects (paper §2). The state
    is exposed transparently — the child layers and the §6 invariant
    checkers read it, but only this module's effects write it (the
    inheritance discipline). *)

open Vsgc_types
module Int_map : Map.S with type key = int

type t = {
  me : Proc.t;
  msgs : Msg.App_msg.t Int_map.t View.Map.t Proc.Map.t;
      (** msgs[q][v][i] — 1-based, sparse (forwarded copies may land
          ahead of the FIFO prefix) *)
  last_sent : int;
  last_rcvd : int Proc.Map.t;  (** per sender, this view; default 0 *)
  last_dlvrd : int Proc.Map.t;  (** per sender, this view; default 0 *)
  current_view : View.t;
  mbrshp_view : View.t;
  view_msg : View.t Proc.Map.t;
      (** latest view marker per sender; default: q's initial view *)
  reliable_set : Proc.Set.t;
  gc : bool;
      (** §5.1 note, opt-in: installing a view drops buffers of views
          older than the previous one (see {!view_effect}) *)
}

val initial : ?gc:bool -> Proc.t -> t
(** Initial state: current and membership views are the process's
    default initial view; [gc] defaults to [false] (proof-faithful). *)

(** {1 Message-queue helpers} *)

val msgs_get : t -> Proc.t -> View.t -> int -> Msg.App_msg.t option
val msgs_set : t -> Proc.t -> View.t -> int -> Msg.App_msg.t -> t

val longest_prefix : t -> Proc.t -> View.t -> int
(** The paper's LongestPrefixOf: largest k with 1..k all present. *)

val last_index : t -> Proc.t -> View.t -> int
(** The paper's LastIndexOf (max key; equals the prefix on own queues). *)

val last_rcvd : t -> Proc.t -> int
val last_dlvrd : t -> Proc.t -> int
val view_msg_of : t -> Proc.t -> View.t
val known_senders : t -> Proc.Set.t
val buffered_queues : t -> int
(** Number of buffered (sender, view) queues — GC observability. *)

(** {1 Transitions (Figure 9)} *)

val mbrshp_view_effect : t -> View.t -> t
(** INPUT mbrshp.view_p(v). *)

val view_enabled : t -> View.t -> bool
(** OUTPUT view_p(v) precondition: [v] is the membership view and its
    identifier exceeds the current one. *)

val view_effect : t -> View.t -> t
(** OUTPUT view_p(v) effect: install, reset the per-view indices; with
    [gc], also drop buffers older than the previous view. *)

val send_effect : t -> Msg.App_msg.t -> t
(** INPUT send_p(m): append to the own queue of the current view. *)

val deliver_next : t -> Proc.t -> Msg.App_msg.t option
val deliver_enabled : t -> Proc.t -> bool
(** OUTPUT deliver_p(q, m): next FIFO message present; self-delivery
    only after the message was sent via CO_RFIFO. *)

val deliver_effect : t -> Proc.t -> t

val reliable_target : t -> Proc.Set.t
(** The canonical parameter for co_rfifo.reliable_p at this layer (the
    current member set); the child layer overrides it. *)

val reliable_enabled : t -> target:Proc.Set.t -> bool
val reliable_effect : t -> Proc.Set.t -> t

val view_msg_send_enabled : t -> bool
val view_msg_send_action : t -> Action.t
val view_msg_send_effect : t -> t

val app_msg_send_enabled : t -> bool
val app_msg_send_action : t -> Action.t
(** @raise Invalid_argument when not enabled. *)

val app_msg_send_effect : t -> t

val recv : t -> Proc.t -> Msg.Wire.t -> t
(** INPUT co_rfifo.deliver_{q,p}: view markers reset the stream index;
    application messages are filed under the sender's announced view;
    forwarded messages land at their tagged (view, index). *)

(** {1 Self-stabilization (DESIGN.md §13)} *)

val self_check : t -> string option
(** Local legitimacy guards: [None] on every state reachable by the
    Figure 9 transitions; [Some reason] witnesses corrupted state or a
    counter at {!Vsgc_types.View.counter_bound} (epoch exhaustion).
    Purely local — reads only this automaton's own state. *)

val corrupt_last_dlvrd : salt:int -> t -> t
(** Harness-only corruption effects for the fault layer's
    state-corruption class. Each lands strictly past the matching
    {!self_check} guard; mutations are relative to the current state,
    so they apply at any point of a run. *)

val corrupt_last_sent : salt:int -> t -> t
val corrupt_view_id : salt:int -> t -> t

val corrupt_wraparound : salt:int -> t -> t
(** A {e consistent} state whose view identifiers have exhausted the
    bounded counter range — only the wraparound guard fires. *)

val corrupt_payload : salt:int -> t -> t
(** Scribbles the newest buffered message — deliberately {e not}
    locally detectable (the global §6 invariants catch it): the
    undetected-corruption witness. No-op when nothing is buffered. *)
