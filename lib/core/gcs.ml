(* The complete group-communication end-point automaton
   GCS_p = VS_RFIFO+TS+SD_p (paper §5.3, Figure 11), a child of
   VS_RFIFO+TS_p adding Self Delivery.

   On the first start_change in a view the end-point issues block() to
   its application and waits for block_ok() before sending its
   synchronization message; the cut it then commits to covers every
   message the (now silent) application sent in the current view, so
   all of them are delivered before the next view. *)

(* no module-level opens needed *)

type block_status = Unblocked | Requested | Blocked

type t = { vs : Vs_rfifo_ts.t; block_status : block_status }

let initial ?strategy ?gc ?compact_sync ?hierarchy ?mutation me =
  { vs = Vs_rfifo_ts.initial ?strategy ?gc ?compact_sync ?hierarchy ?mutation me;
    block_status = Unblocked }

let me t = Vs_rfifo_ts.me t.vs

(* -- OUTPUT block_p() --------------------------------------------------- *)

let block_enabled t = t.vs.Vs_rfifo_ts.start_change <> None && t.block_status = Unblocked
let block_effect t = { t with block_status = Requested }

(* -- INPUT block_ok_p() ------------------------------------------------- *)

let block_ok_effect t = { t with block_status = Blocked }

(* -- OUTPUT co_rfifo.send_p(sync_msg): child precondition ---------------- *)

let sync_send_enabled t = t.block_status = Blocked && Vs_rfifo_ts.sync_send_enabled t.vs

let marker_send_enabled t =
  t.block_status = Blocked && Vs_rfifo_ts.marker_send_enabled t.vs

(* -- OUTPUT view_p(v, T): child effect ----------------------------------- *)

let view_effect t = { t with block_status = Unblocked }

let lift t f = { t with vs = f t.vs }
