(* The sequential-rounds baseline comparator.

   This end-point models the classical virtual-synchrony construction
   the paper contrasts with ([7, 22]-style, §1, §5.2, §9): the
   synchronization messages must be tagged with a globally unique
   identifier that all members pre-agree on — in practice the
   identifier of the view being delivered — so the synchronization
   round can only start once the membership algorithm has terminated
   and announced that view. The rounds are therefore SEQUENTIAL:
   membership first, then one cut-exchange round, where the paper's
   algorithm overlaps them.

   Two deliberate behavioural differences from the paper's algorithm,
   measured by benches E1/E2/E5/E7:
   - the cut exchange starts only after the membership view arrives
     (one extra message-round of view-change latency);
   - membership views are processed to termination in FIFO order, so a
     view already known to be out of date is still delivered ("proceed
     to termination, then reconfigure again", §1).

   The message-stream machinery (view_msg / app_msg bookkeeping) is
   inherited from the paper's own WV_RFIFO layer, so the baseline
   differs only in the reconfiguration protocol. Forwarding of messages
   from disconnected end-points is not modelled; the comparison
   scenarios keep all members connected. *)

open Vsgc_types
module Wv = Vsgc_core.Wv_rfifo

module Vid_map = Map.Make (struct
  type t = View.Id.t

  let compare = View.Id.compare
end)

type block_status = Unblocked | Requested | Blocked

type bsync = { view : View.t; cut : Msg.Cut.t }

type t = {
  wv : Wv.t;
  start_change : Proc.Set.t option;  (* set of the last membership start_change *)
  pending_views : View.t list;  (* membership views, processed in FIFO order *)
  bsyncs : bsync Vid_map.t Proc.Map.t;  (* bsyncs[q][target view id] *)
  block_status : block_status;
  crashed : bool;
}

let initial me =
  {
    wv = Wv.initial me;
    start_change = None;
    pending_views = [];
    bsyncs = Proc.Map.empty;
    block_status = Unblocked;
    crashed = false;
  }

let me st = st.wv.Wv.me

let bsync_of st q vid =
  match Proc.Map.find_opt q st.bsyncs with
  | None -> None
  | Some per_vid -> Vid_map.find_opt vid per_vid

let set_bsync st q vid b =
  let per_vid =
    match Proc.Map.find_opt q st.bsyncs with None -> Vid_map.empty | Some x -> x
  in
  { st with bsyncs = Proc.Map.add q (Vid_map.add vid b per_vid) st.bsyncs }

(* The head pending view is the current reconfiguration target. *)
let target st =
  match st.pending_views with
  | v' :: _ when View.Id.lt (View.id st.wv.Wv.current_view) (View.id v') -> Some v'
  | _ -> None

let in_change st = st.start_change <> None || target st <> None

let reliable_target st =
  let base = View.set st.wv.Wv.current_view in
  let base =
    match st.start_change with Some set -> Proc.Set.union base set | None -> base
  in
  match target st with Some v' -> Proc.Set.union base (View.set v') | None -> base

let block_enabled st = in_change st && st.block_status = Unblocked

(* The cut-exchange round, taggable only once the target view is known. *)
let own_bsync_sent st =
  match target st with Some v' -> bsync_of st (me st) (View.id v') <> None | None -> false

let bsync_cut st =
  let v = st.wv.Wv.current_view in
  Proc.Set.fold
    (fun q acc -> Msg.Cut.set acc q (Wv.longest_prefix st.wv q v))
    (View.set v) Msg.Cut.empty

let bsync_send_enabled st =
  st.block_status = Blocked
  && (not (own_bsync_sent st))
  && (match target st with
     | Some v' ->
         Proc.Set.subset
           (Proc.Set.union (View.set v') (View.set st.wv.Wv.current_view))
           st.wv.Wv.reliable_set
     | None -> false)

let bsync_send_action st =
  match target st with
  | Some v' ->
      let dests =
        Proc.Set.remove (me st)
          (Proc.Set.union (View.set v') (View.set st.wv.Wv.current_view))
      in
      Action.Rf_send
        ( me st,
          dests,
          Msg.Wire.Bsync
            { vid = View.id v'; view = st.wv.Wv.current_view; cut = bsync_cut st } )
  | None -> invalid_arg "Baseline.bsync_send_action"

let bsync_send_effect st =
  match target st with
  | Some v' ->
      set_bsync st (me st) (View.id v')
        { view = st.wv.Wv.current_view; cut = bsync_cut st }
  | None -> st

(* View delivery: all members moving with us must have exchanged cuts
   tagged with the target view's identifier. *)
let view_ready st =
  match target st with
  | Some v' when View.mem (me st) v' ->
      let vid = View.id v' in
      let inter = Proc.Set.inter (View.set v') (View.set st.wv.Wv.current_view) in
      if not (Proc.Set.for_all (fun q -> bsync_of st q vid <> None) inter) then None
      else
        let tset =
          Proc.Set.filter
            (fun q ->
              match bsync_of st q vid with
              | Some b -> View.equal b.view st.wv.Wv.current_view
              | None -> false)
            inter
        in
        let cuts =
          Proc.Set.fold
            (fun r acc ->
              match bsync_of st r vid with Some b -> b.cut :: acc | None -> acc)
            tset []
        in
        if
          Proc.Set.for_all
            (fun q -> Wv.last_dlvrd st.wv q = Msg.Cut.max_over cuts q)
            (View.set st.wv.Wv.current_view)
        then Some (v', tset)
        else None
  | _ -> None

(* Delivery restriction: once the own cut for the target view is out,
   never deliver beyond the committed cuts of the joint movers. *)
let deliver_restriction st q =
  match target st with
  | Some v' when own_bsync_sent st ->
      let vid = View.id v' in
      let inter = Proc.Set.inter (View.set v') (View.set st.wv.Wv.current_view) in
      let cuts =
        Proc.Set.fold
          (fun r acc ->
            match bsync_of st r vid with
            | Some b when View.equal b.view st.wv.Wv.current_view -> b.cut :: acc
            | _ -> acc)
          inter []
      in
      Wv.last_dlvrd st.wv q + 1 <= Msg.Cut.max_over cuts q
  | _ -> true

(* -- Component ----------------------------------------------------------- *)

let outputs st =
  if st.crashed then []
  else
    let p = me st in
    let acc = ref [] in
    let add a = acc := a :: !acc in
    let rt = reliable_target st in
    if Wv.reliable_enabled st.wv ~target:rt then add (Action.Rf_reliable (p, rt));
    if Wv.view_msg_send_enabled st.wv then add (Wv.view_msg_send_action st.wv);
    if Wv.app_msg_send_enabled st.wv then add (Wv.app_msg_send_action st.wv);
    if block_enabled st then add (Action.Block p);
    if bsync_send_enabled st then add (bsync_send_action st);
    Proc.Set.iter
      (fun q ->
        if deliver_restriction st q && Wv.deliver_enabled st.wv q then
          match Wv.deliver_next st.wv q with
          | Some m -> add (Action.App_deliver (p, q, m))
          | None -> ())
      (Wv.known_senders st.wv);
    (match view_ready st with
    | Some (v', tset) -> add (Action.App_view (p, v', tset))
    | None -> ());
    !acc

let accepts = Vsgc_core.Endpoint.accepts

let lift st f = { st with wv = f st.wv }

(* Drop pending membership views superseded before their turn. *)
let rec gc_pending st =
  match st.pending_views with
  | v' :: rest when not (View.Id.lt (View.id st.wv.Wv.current_view) (View.id v')) ->
      gc_pending { st with pending_views = rest }
  | _ -> st

let apply st (a : Action.t) =
  let p = me st in
  if st.crashed then
    match a with Action.Recover q when Proc.equal p q -> initial p | _ -> st
  else
    gc_pending
      (match a with
      | Action.App_send (_, m) -> lift st (fun w -> Wv.send_effect w m)
      | Action.Mb_view (_, v) ->
          let st = { st with pending_views = st.pending_views @ [ v ] } in
          lift st (fun w -> Wv.mbrshp_view_effect w v)
      | Action.Mb_start_change (_, _, set) -> { st with start_change = Some set }
      | Action.Block_ok _ -> { st with block_status = Blocked }
      | Action.Rf_deliver (q, _, w) -> (
          match w with
          | Msg.Wire.Bsync { vid; view; cut } -> set_bsync st q vid { view; cut }
          | _ -> lift st (fun wst -> Wv.recv wst q w))
      | Action.Crash _ -> { st with crashed = true }
      | Action.Recover _ -> st
      | Action.Block _ -> { st with block_status = Requested }
      | Action.Rf_reliable (_, set) -> lift st (fun w -> Wv.reliable_effect w set)
      | Action.Rf_send (_, _, Msg.Wire.View_msg _) -> lift st Wv.view_msg_send_effect
      | Action.Rf_send (_, _, Msg.Wire.App _) -> lift st Wv.app_msg_send_effect
      | Action.Rf_send (_, _, Msg.Wire.Bsync _) -> bsync_send_effect st
      | Action.App_deliver (_, q, _) -> lift st (fun w -> Wv.deliver_effect w q)
      | Action.App_view (_, v, _) ->
          let st =
            { st with
              pending_views =
                (match st.pending_views with _ :: rest -> rest | [] -> []);
              start_change = None;
              block_status = Unblocked }
          in
          lift st (fun w -> Wv.view_effect w v)
      | _ -> st)

(* End-point-role component: co-located at p (same cell as the client
   and the real end-point tower it replaces). *)
let footprint p (a : Action.t) =
  let open Vsgc_ioa.Footprint in
  match a with
  | Action.App_send (q, _) | Action.Block_ok q | Action.Mb_start_change (q, _, _)
  | Action.Mb_view (q, _) | Action.Crash q | Action.Recover q
  | Action.Rf_reliable (q, _) | Action.Rf_send (q, _, _)
  | Action.App_deliver (q, _, _) | Action.App_view (q, _, _) | Action.Block q
    when Proc.equal p q -> rw [ Proc_state p ]
  | Action.Rf_deliver (_, q, _) when Proc.equal p q -> rw [ Proc_state p ]
  | _ -> empty

let emits p (a : Action.t) =
  match a with
  | Action.Rf_reliable (q, _) | Action.App_deliver (q, _, _)
  | Action.App_view (q, _, _) | Action.Block q -> Proc.equal p q
  | Action.Rf_send (q, _, w) -> (
      Proc.equal p q
      &&
      match Msg.Wire.kind w with
      | Msg.Wire.K_view_msg | Msg.Wire.K_app | Msg.Wire.K_bsync -> true
      | Msg.Wire.K_sync | Msg.Wire.K_sync_batch | Msg.Wire.K_fwd -> false)
  | _ -> false

let observe p (st : t) =
  [ (Vsgc_ioa.Footprint.Proc_state p, Vsgc_ioa.Component.digest st) ]

let def p : t Vsgc_ioa.Component.def =
  {
    name = Fmt.str "baseline_%a" Proc.pp p;
    init = initial p;
    accepts = accepts p;
    outputs;
    apply;
    footprint = footprint p;
    emits = emits p;
    observe = observe p;
  }

let component p =
  let d = def p in
  let r = ref d.Vsgc_ioa.Component.init in
  (Vsgc_ioa.Component.pack_with_ref d r, r)
