(** The incrementally materialized KV store behind a service replica:
    applies each totally ordered payload once (same semantics as the
    pure fold [Replica.fold_state], pinned by test), tracks applied
    write command ids for ack dedup, and exposes a deterministic
    content digest for the batched-vs-unbatched and cross-replica
    byte-identity checks (DESIGN.md §15). *)

module Replica = Vsgc_replication.Replica
module Smap = Replica.Smap

type t

val create : unit -> t

val reset : t -> unit
(** Back to empty — used when the hosting replica is reborn and its
    log restarts. *)

val apply : t -> string -> (int * int) option
(** Apply one ordered payload; returns the write command id [(client,
    seq)] that just became stable, if the payload was a service write.
    A re-ordered duplicate id still returns the id (acks are
    idempotent) and bumps {!dups}. *)

val get : t -> string -> string option
val map : t -> string Smap.t
val version : t -> int
val size : t -> int
val commands : t -> int
val dups : t -> int
val unknowns : t -> int
val applied : t -> client:int -> seq:int -> bool
val applied_count : t -> int

val digest : t -> string
(** Content digest of the map alone (hex). *)

val digest_map : string Smap.t -> string
(** Same digest over a bare map — for comparing against
    [Replica.state]. *)
