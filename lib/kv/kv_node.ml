(* A deployable KV server node: one OS-process-worth of the replicated
   KV service.

   Exactly the [Vsgc_net.Node] construction — the UNCHANGED automata
   in a private executor behind an [Io_pump] — but hosting a GCS
   end-point plus a [Replica] (instead of the scripted client), with
   the KV service engine at the edge:

     kv client           Kv_req packet        -> service request
                         (writes -> replica's ordered stream,
                          stable writes -> Kv_resp acks out)
     gcs peer            Rf packet            -> Rf_deliver
     membership server   Start_change/View    -> Mb_start_change/Mb_view
                         Up(its server)       -> emits a Join packet
     executor capture    Rf_send(p, set, w)   -> one Rf packet per target

   The replica component runs strict (ordered codec drift raises) and
   in the batched or unbatched announcement mode the deployment
   selects. *)

open Vsgc_types
open Vsgc_wire
module Transport = Vsgc_net.Transport
module Replica = Vsgc_replication.Replica
module Sym_replica = Vsgc_replication.Sym_replica

(* Which total-order arm the node hosts (DESIGN.md §16): the
   sequencer-based Replica or the symmetric Sym_replica. *)
type replica_ref = Gcs of Replica.t ref | Sym of Sym_replica.t ref

type t = {
  id : Node_id.t;
  proc : Proc.t;
  attach : Server.t;
  exec : Vsgc_ioa.Executor.t;
  pump : Vsgc_ioa.Io_pump.t;
  outq : (Node_id.t * Packet.t) Queue.t;
  mutable malformed : int;
  replica : replica_ref;
  endpoint : Vsgc_core.Endpoint.t ref;
  service : Kv_service.t;
}

let create ?(seed = 0) ?(layer = `Full) ?(batch = false) ?(arm = `Gcs) ~attach
    proc =
  let ep_packed, endpoint = Vsgc_core.Endpoint.component ~layer proc in
  let rep_packed, replica, backend =
    match arm with
    | `Gcs ->
        let packed, r = Replica.component ~strict:true ~batch_orders:batch proc in
        (packed, Gcs r, Kv_service.backend_of_replica r)
    | `Sym ->
        let packed, r = Sym_replica.component ~strict:true proc in
        (packed, Sym r, Kv_service.backend_of_sym r)
  in
  let exec =
    Vsgc_ioa.Executor.create ~seed ~keep_trace:true [ ep_packed; rep_packed ]
  in
  let capture = function
    | Action.Rf_send (q, _, _) -> Proc.equal q proc
    | _ -> false
  in
  {
    id = Node_id.Client proc;
    proc;
    attach;
    exec;
    pump = Vsgc_ioa.Io_pump.create ~capture exec;
    outq = Queue.create ();
    malformed = 0;
    replica;
    endpoint;
    service = Kv_service.create ~batch backend;
  }

let id t = t.id
let proc t = t.proc
let executor t = t.exec
let malformed t = t.malformed
let service t = t.service

let send_pkt t dst pkt = Queue.add (dst, pkt) t.outq
let enqueue t a = Vsgc_ioa.Io_pump.enqueue t.pump a
let inject = enqueue

let handle t ev =
  match ev with
  | Transport.Malformed _ -> t.malformed <- t.malformed + 1
  | Transport.Up (Node_id.Server s) when Server.equal s t.attach ->
      send_pkt t (Node_id.Server s) (Packet.Join t.proc)
  | Transport.Up _ | Transport.Down _ -> ()
  | Transport.Received (_, Packet.Rf { from; wire }) ->
      enqueue t (Action.Rf_deliver (from, t.proc, wire))
  | Transport.Received (_, Packet.Start_change { target; cid; set })
    when Proc.equal target t.proc ->
      enqueue t (Action.Mb_start_change (t.proc, cid, set))
  | Transport.Received (_, Packet.View { target; view })
    when Proc.equal target t.proc ->
      enqueue t (Action.Mb_view (t.proc, view))
  | Transport.Received (_, Packet.Kv_req req) ->
      Kv_service.handle_request t.service req
  | Transport.Received _ -> ()

let route t a =
  match a with
  | Action.Rf_send (p, targets, wire) when Proc.equal p t.proc ->
      Proc.Set.iter
        (fun q -> send_pkt t (Node_id.Client q) (Packet.Rf { from = p; wire }))
        targets
  | _ -> ()

let response_target (resp : Kv_msg.response) =
  match resp with
  | Kv_msg.Put_ack { client; _ } | Kv_msg.Get_reply { client; _ } ->
      Node_id.Kv_client client

let step ?max_steps t =
  Vsgc_ioa.Io_pump.pump ?max_steps t.pump;
  List.iter (route t) (Vsgc_ioa.Io_pump.drain t.pump);
  (* Stable-delivery edge: fold newly ordered entries into the store
     and ship the acknowledgements that became due. *)
  Kv_service.advance t.service;
  List.iter
    (fun resp -> send_pkt t (response_target resp) (Packet.Kv_resp resp))
    (Kv_service.take_acks t.service);
  let pkts = List.of_seq (Queue.to_seq t.outq) in
  Queue.clear t.outq;
  pkts

let replica t = t.replica
let store t = Kv_service.store t.service
let digest t = Kv_service.digest t.service
let crashed t = Vsgc_core.Endpoint.crashed !(t.endpoint)
let current_view t = Vsgc_core.Endpoint.current_view !(t.endpoint)

let views t =
  match t.replica with
  | Gcs r -> Replica.Tord_client.views !r.Replica.tc
  | Sym r -> Sym_replica.Tord_sym_client.views !r.Sym_replica.tc
let steps t = Vsgc_ioa.Executor.trace_length t.exec
let trace t = Vsgc_ioa.Executor.trace t.exec
let fingerprint t = Vsgc_ioa.Trace_stats.fingerprint (trace t)

let quiescent t =
  Vsgc_ioa.Io_pump.quiescent t.pump && Queue.is_empty t.outq
