(** The KV service engine between a hosted {!Replica} and the
    request/response protocol: writes enter the totally ordered
    stream stamped with their command id, reads answer from the
    materialized committed prefix, and {!advance} folds newly ordered
    entries into the store — one apply+ack round per contiguous run
    when batched, one per command when not, byte-identical stores
    either way (DESIGN.md §15). *)

module Replica = Vsgc_replication.Replica
module Sym_replica = Vsgc_replication.Sym_replica
module Kv_msg = Vsgc_wire.Kv_msg

type backend = {
  write : client:int -> seq:int -> key:string -> value:string -> unit;
  log_length : unit -> int;
  ordered_from : int -> string list;
}
(** What the engine needs from a hosted total-order arm: push a
    stamped write into the ordered stream, and read the stable prefix
    through a cursor. *)

val backend_of_replica : Replica.t ref -> backend
val backend_of_sym : Sym_replica.t ref -> backend

type t

val create : batch:bool -> backend -> t

val handle_request : t -> Kv_msg.request -> unit
(** A request off the wire: [Put] is pushed into the replica's ordered
    stream (acknowledged by {!advance} once stable), [Get] queues an
    immediate reply from the committed store. *)

val advance : t -> unit
(** Fold entries ordered since the last call into the store and queue
    one [Put_ack] per newly stable write. Detects a reborn replica
    (log restarted below the cursor) and refolds from scratch. *)

val take_acks : t -> Kv_msg.response list
(** Drain queued responses, oldest first. *)

val store : t -> Kv_store.t
val digest : t -> string
val cursor : t -> int

val apply_rounds : t -> int
(** Apply+ack rounds so far — the per-message bookkeeping count the
    batched path collapses. *)

val requests : t -> int
val rebirths : t -> int
val batched : t -> bool
