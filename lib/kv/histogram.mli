(** A bucketed log-linear latency histogram (16 linear sub-buckets per
    power-of-two octave, ~6% bounded relative error). Values are
    non-negative integers in the caller's unit (hub ticks, or
    microseconds on the socket arms). Percentile reads report the
    bucket's inclusive upper bound — they never understate. *)

type t

val create : unit -> t
val reset : t -> unit

val add : t -> int -> unit
(** Record one value (negatives clamp to 0). *)

val count : t -> int
val max_value : t -> int

val percentile : t -> float -> int
(** [percentile t p] with [p] in [0,1]; 0 when empty. [percentile t
    0.5] is p50, [0.99] p99, [0.999] p999. *)

val merge : into:t -> t -> unit
