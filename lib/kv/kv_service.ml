(* The KV service engine: the glue between a hosted [Replica] and the
   request/response wire protocol.

   Requests arrive off the transport; writes are stamped with their
   command id and pushed into the replica's totally ordered stream,
   reads answer immediately from the materialized store (the committed
   prefix — read-committed, not read-your-writes). [advance] moves the
   store's cursor over the entries that became totally ordered since
   the last call and queues one acknowledgement per stable write.

   Batched vs unbatched stable delivery (DESIGN.md §15): the ordered
   suffix past the cursor is a contiguous run of deliverable commands.
   Unbatched, each command is its own apply+ack round (one round of
   bookkeeping per message — the per-message cost Derecho's batching
   removes); batched, the whole run is one round. Both walk the same
   log, so the resulting store is byte-identical — only [apply_rounds]
   and the wire-level announcement traffic differ. *)

module Replica = Vsgc_replication.Replica
module Sym_replica = Vsgc_replication.Sym_replica
module Kv_msg = Vsgc_wire.Kv_msg

(* The engine is arm-agnostic: any totally ordered log with a write
   entry point and a stable-prefix cursor can host the service. The
   two bake-off arms (sequencer-based Replica, symmetric Sym_replica)
   plug in through this record. *)
type backend = {
  write : client:int -> seq:int -> key:string -> value:string -> unit;
  log_length : unit -> int;
  ordered_from : int -> string list;
}

let backend_of_replica (replica : Replica.t ref) =
  {
    write = (fun ~client ~seq ~key ~value -> Replica.write replica ~client ~seq ~key ~value);
    log_length = (fun () -> Replica.log_length !replica);
    ordered_from = (fun k -> Replica.ordered_from !replica k);
  }

let backend_of_sym (replica : Sym_replica.t ref) =
  {
    write =
      (fun ~client ~seq ~key ~value ->
        Sym_replica.write replica ~client ~seq ~key ~value);
    log_length = (fun () -> Sym_replica.log_length !replica);
    ordered_from = (fun k -> Sym_replica.ordered_from !replica k);
  }

type t = {
  backend : backend;
  store : Kv_store.t;
  mutable cursor : int;  (* ordered entries consumed into the store *)
  batch : bool;
  mutable apply_rounds : int;
  mutable requests : int;
  acks : Kv_msg.response Queue.t;
  mutable rebirths : int;  (* times the hosting replica restarted *)
}

let create ~batch backend =
  {
    backend;
    store = Kv_store.create ();
    cursor = 0;
    batch;
    apply_rounds = 0;
    requests = 0;
    acks = Queue.create ();
    rebirths = 0;
  }

let handle_request t (req : Kv_msg.request) =
  t.requests <- t.requests + 1;
  match req with
  | Kv_msg.Put { client; seq; key; value } ->
      t.backend.write ~client ~seq ~key ~value
  | Kv_msg.Get { client; seq; key } ->
      Queue.add
        (Kv_msg.Get_reply { client; seq; value = Kv_store.get t.store key })
        t.acks

(* Fold the newly ordered suffix into the store. A reborn replica's
   log restarts below the cursor: reset and refold from the new log
   (whose snapshot prefix carries the group state). *)
let advance t =
  let len = t.backend.log_length () in
  if len < t.cursor then begin
    Kv_store.reset t.store;
    Queue.clear t.acks;
    t.cursor <- 0;
    t.rebirths <- t.rebirths + 1
  end;
  let fresh = t.backend.ordered_from t.cursor in
  if fresh <> [] then begin
    let ack payload =
      match Kv_store.apply t.store payload with
      | Some (client, seq) -> Queue.add (Kv_msg.Put_ack { client; seq }) t.acks
      | None -> ()
    in
    if t.batch then begin
      List.iter ack fresh;
      t.apply_rounds <- t.apply_rounds + 1
    end
    else
      List.iter
        (fun payload ->
          ack payload;
          t.apply_rounds <- t.apply_rounds + 1)
        fresh;
    t.cursor <- t.backend.log_length ()
  end

let take_acks t =
  let out = List.of_seq (Queue.to_seq t.acks) in
  Queue.clear t.acks;
  out

let store t = t.store
let digest t = Kv_store.digest t.store
let cursor t = t.cursor
let apply_rounds t = t.apply_rounds
let requests t = t.requests
let rebirths t = t.rebirths
let batched t = t.batch
