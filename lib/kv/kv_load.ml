(* Open-loop load generator core.

   Open-loop means arrival times are a function of the clock alone —
   [due] emits request i at [start + i/rate] whether or not earlier
   requests have been answered, so a stalled service accumulates
   latency instead of silently throttling the offered rate (the
   coordinated-omission mistake a closed loop makes). The core is
   time-abstract: the driver feeds "now" in whatever unit it has (hub
   ticks on the loopback arms, seconds on the socket arms) and routes
   requests/responses over its own transport.

   Latency is measured from a command's FIRST emission to its first
   acknowledgement, so retransmissions (enabled by a non-zero
   [retransmit_after]) don't reset the clock; duplicate acks — a
   retransmitted command ordered twice, or acked twice — are counted
   and dropped by command id. The max client-visible stall is the
   longest gap between consecutive acks while requests were
   outstanding, the "delivery continues during reconfiguration" SLO
   metric (DESIGN.md §15). *)

type conf = {
  client : int;  (* wire identity: Node_id.Kv_client client *)
  rate : float;  (* target requests per time unit *)
  count : int;  (* total unique writes to issue *)
  key_space : int;  (* keys cycle within a per-client namespace *)
  value_bytes : int;
  retransmit_after : float;  (* 0. disables retransmission *)
}

type t = {
  conf : conf;
  start : float;
  mutable next_seq : int;
  pending : (int, float * float) Hashtbl.t;  (* seq -> first, last sent *)
  acked : (int, unit) Hashtbl.t;
  mutable dup_acks : int;
  mutable retransmits : int;
  hist : Histogram.t;
  mutable last_ack_at : float;
  mutable max_stall : float;
}

let create ~start conf =
  if conf.rate <= 0. then invalid_arg "Kv_load.create: rate must be positive";
  {
    conf;
    start;
    next_seq = 0;
    pending = Hashtbl.create 256;
    acked = Hashtbl.create 256;
    dup_acks = 0;
    retransmits = 0;
    hist = Histogram.create ();
    last_ack_at = start;
    max_stall = 0.;
  }

(* Deterministic per-client key/value streams: keys cycle inside the
   client's own namespace (so concurrent clients never conflict and
   acked values are checkable), values carry the command id and pad to
   the configured size. *)
let key_of t seq = Fmt.str "c%d/k%d" t.conf.client (seq mod t.conf.key_space)

let value_of t seq =
  let base = Fmt.str "v%d.%d." t.conf.client seq in
  let pad = t.conf.value_bytes - String.length base in
  if pad <= 0 then base else base ^ String.make pad '.'

let request_of t seq =
  Vsgc_wire.Kv_msg.Put
    {
      client = t.conf.client;
      seq;
      key = key_of t seq;
      value = value_of t seq;
    }

let due t ~now =
  (* New arrivals: everything whose scheduled time has passed. *)
  let fresh = ref [] in
  while
    t.next_seq < t.conf.count
    && t.start +. (float_of_int t.next_seq /. t.conf.rate) <= now
  do
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Hashtbl.replace t.pending seq (now, now);
    fresh := request_of t seq :: !fresh
  done;
  (* Retransmissions, oldest seq first for determinism. *)
  let retx =
    if t.conf.retransmit_after <= 0. then []
    else
      Hashtbl.fold
        (fun seq (_, last) acc ->
          if now -. last >= t.conf.retransmit_after then seq :: acc else acc)
        t.pending []
      |> List.sort Int.compare
  in
  List.iter
    (fun seq ->
      let first, _ = Hashtbl.find t.pending seq in
      Hashtbl.replace t.pending seq (first, now);
      t.retransmits <- t.retransmits + 1)
    retx;
  List.rev !fresh @ List.map (request_of t) retx

let record_ack t ~now seq =
  if Hashtbl.mem t.acked seq then t.dup_acks <- t.dup_acks + 1
  else begin
    Hashtbl.replace t.acked seq ();
    (match Hashtbl.find_opt t.pending seq with
    | Some (first, _) ->
        Histogram.add t.hist (int_of_float (now -. first));
        Hashtbl.remove t.pending seq
    | None -> ());
    let stall = now -. t.last_ack_at in
    if stall > t.max_stall then t.max_stall <- stall;
    t.last_ack_at <- now
  end

let on_response t ~now (resp : Vsgc_wire.Kv_msg.response) =
  match resp with
  | Vsgc_wire.Kv_msg.Put_ack { client; seq } when client = t.conf.client ->
      record_ack t ~now seq
  | Vsgc_wire.Kv_msg.Get_reply { client; seq; value = _ }
    when client = t.conf.client ->
      record_ack t ~now seq
  | _ -> ()

let conf t = t.conf
let sent t = t.next_seq
let acked t = Hashtbl.length t.acked
let outstanding t = Hashtbl.length t.pending
let dup_acks t = t.dup_acks
let retransmits t = t.retransmits
let all_sent t = t.next_seq >= t.conf.count
let finished t = all_sent t && Hashtbl.length t.pending = 0
let histogram t = t.hist
let max_stall t = t.max_stall

let acked_ids t =
  Hashtbl.fold (fun seq () acc -> (t.conf.client, seq) :: acc) t.acked []
  |> List.sort compare

type stats = {
  sent : int;
  acked : int;
  outstanding : int;
  dup_acks : int;
  retransmits : int;
  p50 : int;
  p99 : int;
  p999 : int;
  max_latency : int;
  max_stall : float;
}

let stats t =
  {
    sent = t.next_seq;
    acked = Hashtbl.length t.acked;
    outstanding = Hashtbl.length t.pending;
    dup_acks = t.dup_acks;
    retransmits = t.retransmits;
    p50 = Histogram.percentile t.hist 0.5;
    p99 = Histogram.percentile t.hist 0.99;
    p999 = Histogram.percentile t.hist 0.999;
    max_latency = Histogram.max_value t.hist;
    max_stall = t.max_stall;
  }
