(** A deployable KV server node: the [Vsgc_net.Node] construction (the
    unchanged automata in a private executor behind an [Io_pump])
    hosting a GCS end-point plus a strict {!Replica}, with the
    {!Kv_service} engine translating [Kv_req]/[Kv_resp] packets at the
    edge (DESIGN.md §15). *)

open Vsgc_types
open Vsgc_wire
module Transport = Vsgc_net.Transport
module Replica = Vsgc_replication.Replica
module Sym_replica = Vsgc_replication.Sym_replica

type replica_ref = Gcs of Replica.t ref | Sym of Sym_replica.t ref
(** Which total-order arm the node hosts (DESIGN.md §16). *)

type t

val create :
  ?seed:int ->
  ?layer:Vsgc_core.Endpoint.layer ->
  ?batch:bool ->
  ?arm:[ `Gcs | `Sym ] ->
  attach:Server.t ->
  Proc.t ->
  t
(** [batch] selects the coalesced announcement + one-round stable
    delivery path (the symmetric arm has no announcement mode, so
    there [batch] only selects the service's stable-delivery rounds);
    [arm] picks the hosted total-order arm (default [`Gcs]); the
    hosted replica always runs strict. *)

val id : t -> Node_id.t
val proc : t -> Proc.t
val executor : t -> Vsgc_ioa.Executor.t
val malformed : t -> int
val service : t -> Kv_service.t

val handle : t -> Transport.event -> unit
(** Translate one transport event into environment inputs (or a
    service request). Total: unknown packets are ignored, malformed
    events only bump a counter. *)

val step : ?max_steps:int -> t -> (Node_id.t * Packet.t) list
(** Pump to quiescence, advance the service (stable writes become
    acks), and return the packets to ship. *)

val inject : t -> Action.t -> unit
(** Out-of-band environment input (Crash/Recover from the fault
    layer). *)

val replica : t -> replica_ref
val store : t -> Kv_store.t
val digest : t -> string
val crashed : t -> bool
val current_view : t -> View.t
val views : t -> (View.t * Proc.Set.t) list
val steps : t -> int
val trace : t -> Action.t list
val fingerprint : t -> string
val quiescent : t -> bool
