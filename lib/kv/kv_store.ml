(* The incrementally materialized KV store behind a service replica.

   [Replica.state] is a pure fold of the whole ordered log — the right
   spec, but O(log) per read and O(log²) for a service that reads
   after every command. This store applies each ordered payload once,
   keeping the map, version and digest current; its semantics are
   byte-for-byte the fold's ([Replica.fold_state]), which the test
   suite pins by comparing both on the same log.

   The store also keeps the set of applied write command ids: a
   retransmitted write that was already ordered applies idempotently
   (same key, same value) and is remembered as a duplicate, so
   acknowledgements can dedup by id and the chaos SLO can check every
   acknowledged write against the stable log. *)

module Replica = Vsgc_replication.Replica
module Smap = Replica.Smap

type t = {
  mutable map : string Smap.t;
  mutable version : int;
  applied : (int * int, unit) Hashtbl.t;  (* write command ids seen *)
  mutable commands : int;  (* ordered payloads applied *)
  mutable dups : int;  (* write ids ordered more than once *)
  mutable unknowns : int;  (* undecodable payloads tolerated *)
}

let create () =
  {
    map = Smap.empty;
    version = 0;
    applied = Hashtbl.create 512;
    commands = 0;
    dups = 0;
    unknowns = 0;
  }

let reset t =
  t.map <- Smap.empty;
  t.version <- 0;
  Hashtbl.reset t.applied;
  t.commands <- 0;
  t.dups <- 0;
  t.unknowns <- 0

(* Apply one ordered payload; mirrors [Replica.fold_state] exactly.
   Returns the write command id that just became stable, if any. *)
let apply t payload =
  t.commands <- t.commands + 1;
  match Replica.decode payload with
  | Replica.Set (k, v) ->
      t.version <- t.version + 1;
      t.map <- Smap.add k v t.map;
      None
  | Replica.Write { client; seq; key; value } ->
      t.version <- t.version + 1;
      t.map <- Smap.add key value t.map;
      let id = (client, seq) in
      if Hashtbl.mem t.applied id then t.dups <- t.dups + 1
      else Hashtbl.replace t.applied id ();
      Some id
  | Replica.Snapshot (ver, snap_kv) ->
      t.version <- max t.version ver;
      t.map <- Smap.union (fun _ _mine theirs -> Some theirs) t.map snap_kv;
      None
  | Replica.Unknown ->
      t.unknowns <- t.unknowns + 1;
      None

let get t key = Smap.find_opt key t.map
let map t = t.map
let version t = t.version
let size t = Smap.cardinal t.map
let commands t = t.commands
let dups t = t.dups
let unknowns t = t.unknowns
let applied t ~client ~seq = Hashtbl.mem t.applied (client, seq)
let applied_count t = Hashtbl.length t.applied

(* A deterministic content digest of the map alone (not the version or
   the id set): the byte-identity the batched-vs-unbatched equality
   assertion and the cross-replica convergence check compare. *)
let digest_map m =
  let buf = Buffer.create 256 in
  Smap.iter
    (fun k v ->
      Buffer.add_string buf k;
      Buffer.add_char buf '\x00';
      Buffer.add_string buf v;
      Buffer.add_char buf '\x01')
    m;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let digest t = digest_map t.map
