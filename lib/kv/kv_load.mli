(** Open-loop load generator core: arrival times are a function of the
    clock alone (request i is due at [start + i/rate] regardless of
    outstanding responses), so a stalled service accumulates latency
    instead of throttling the offered rate. Time-abstract — the
    driver feeds [now] in its own unit (hub ticks or seconds) and
    routes the requests itself. Latency runs from first emission to
    first ack; duplicate acks dedup by command id; the max
    client-visible stall is the longest gap between consecutive acks
    (DESIGN.md §15). *)

type conf = {
  client : int;  (** wire identity: [Node_id.Kv_client client] *)
  rate : float;  (** target requests per time unit *)
  count : int;  (** total unique writes to issue *)
  key_space : int;  (** keys cycle within a per-client namespace *)
  value_bytes : int;
  retransmit_after : float;  (** 0. disables retransmission *)
}

type t

val create : start:float -> conf -> t
(** @raise Invalid_argument when [rate <= 0]. *)

val due : t -> now:float -> Vsgc_wire.Kv_msg.request list
(** Requests to put on the wire now: new arrivals whose scheduled time
    has passed, plus retransmissions of outstanding commands older
    than [retransmit_after]. Deterministic given the [now] stream. *)

val on_response : t -> now:float -> Vsgc_wire.Kv_msg.response -> unit

val key_of : t -> int -> string
val value_of : t -> int -> string

val conf : t -> conf
val sent : t -> int
val acked : t -> int
val outstanding : t -> int
val dup_acks : t -> int
val retransmits : t -> int

val all_sent : t -> bool
val finished : t -> bool
(** All issued AND all acknowledged. *)

val histogram : t -> Histogram.t
val max_stall : t -> float

val acked_ids : t -> (int * int) list
(** Acknowledged command ids [(client, seq)], ascending. *)

type stats = {
  sent : int;
  acked : int;
  outstanding : int;
  dup_acks : int;
  retransmits : int;
  p50 : int;
  p99 : int;
  p999 : int;
  max_latency : int;
  max_stall : float;
}

val stats : t -> stats
