(* A bucketed log-linear latency histogram (HdrHistogram-style, cut
   down): 16 linear sub-buckets per power-of-two magnitude, so the
   relative quantization error is bounded by ~6% at every scale while
   [add] stays two shifts and an increment — cheap enough to sit on the
   load generator's ack path.

   Values are non-negative integers in whatever unit the caller uses
   (hub ticks on the loopback arms, microseconds on the socket arms);
   percentile reads report the bucket's inclusive upper bound, i.e.
   they never understate a latency. *)

(* 16 sub-buckets per octave; indices 0..15 are exact. *)
let sub = 16
let sub_bits = 4

(* Enough octaves for 62-bit values; the last bucket absorbs overflow. *)
let buckets = sub * 62

type t = {
  counts : int array;
  mutable total : int;
  mutable max_value : int;
}

let create () = { counts = Array.make buckets 0; total = 0; max_value = 0 }

let reset t =
  Array.fill t.counts 0 buckets 0;
  t.total <- 0;
  t.max_value <- 0

(* Highest set bit position (0-based); v > 0. *)
let msb v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let index_of v =
  if v < sub then v
  else
    let shift = msb v - sub_bits in
    let idx = (shift * sub) + (v lsr shift) in
    if idx >= buckets then buckets - 1 else idx

(* Inclusive upper bound of a bucket — the value a percentile read
   reports. *)
let upper_of idx =
  if idx < sub then idx
  else
    let shift = (idx / sub) - 1 in
    let m = idx - (shift * sub) in
    ((m + 1) lsl shift) - 1

let add t v =
  let v = if v < 0 then 0 else v in
  let idx = index_of v in
  t.counts.(idx) <- t.counts.(idx) + 1;
  t.total <- t.total + 1;
  if v > t.max_value then t.max_value <- v

let count t = t.total
let max_value t = t.max_value

let percentile t p =
  if t.total = 0 then 0
  else
    let p = if p < 0. then 0. else if p > 1. then 1. else p in
    (* The smallest bucket whose cumulative count covers p of total. *)
    let target =
      let x = int_of_float (ceil (p *. float_of_int t.total)) in
      if x < 1 then 1 else x
    in
    let rec go idx acc =
      if idx >= buckets then t.max_value
      else
        let acc = acc + t.counts.(idx) in
        if acc >= target then min (upper_of idx) t.max_value else go (idx + 1) acc
    in
    go 0 0

let merge ~into src =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.total <- into.total + src.total;
  if src.max_value > into.max_value then into.max_value <- src.max_value
