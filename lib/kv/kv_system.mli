(** Loopback deployment of the replicated KV service under the fault
    surface — the harness behind bench E17 and [chaos.exe kv-slo].

    KV server nodes and membership servers share one deterministic hub
    with the open-loop load clients; the synchronous drive loop
    mirrors [Net_system]'s, time is the hub's virtual clock, and a run
    is fully determined by (seed, script). The fault surface composes
    partitions with crash/restart exactly like [Net_system]; load
    clients always travel with their home node's partition class
    (DESIGN.md §15). *)

open Vsgc_types
open Vsgc_wire
module Loopback = Vsgc_net.Loopback

type t

val create :
  ?seed:int ->
  ?knobs:Loopback.knobs ->
  ?batch:bool ->
  ?arm:[ `Gcs | `Sym ] ->
  n:int ->
  ?n_servers:int ->
  unit ->
  t
(** [n] KV server nodes (proc [i] attached to membership server
    [i mod n_servers]) plus [n_servers >= 1] membership servers, fully
    meshed. [batch] selects coalesced announcements + one-round stable
    delivery on every node; [arm] picks the hosted total-order arm
    (default [`Gcs], see {!Kv_node.create}). *)

val attach_monitors : t -> Vsgc_ioa.Monitor.t list -> unit
(** Attach shared spec monitors to every KV node executor (the
    [Net_system] pattern: the single-threaded drive loop makes the
    merged trace deterministic; server executors are excluded). *)

val finish : t -> unit
(** Judge the attached monitors' residual obligations.
    @raise Vsgc_ioa.Monitor.Violation if any are open. *)

val hub : t -> Loopback.hub
val now : t -> float
val kv_node : t -> Proc.t -> Kv_node.t
val procs : t -> Proc.t list

(** {1 Fault surface} *)

val set_partition : t -> Node_id.t list list -> unit
val heal : t -> unit

val crash : t -> Proc.t -> unit
(** Crash a KV node: §8 Crash action, links down, in-flight traffic
    discarded. *)

val restart : t -> Proc.t -> unit
(** Recover a crashed KV node; the transport [Up] from its server
    re-triggers the Join handshake and the store refolds from the
    post-transfer log. *)

(** {1 Load clients} *)

val add_load : t -> home:Proc.t -> Kv_load.conf -> Kv_load.t
(** Attach an open-loop load client to the hub, wired to its [home] KV
    node. The generator starts at the current virtual time. *)

val loads : t -> (int * Kv_load.t * Proc.t) list

(** {1 Driving} *)

val round : t -> unit
val run : ?max_ticks:int -> t -> unit
(** Drive until quiescent with every load fully issued.
    @raise Failure when the tick budget runs out. *)

val run_ticks : t -> int -> unit
val quiescent : t -> bool
val all_sent : t -> bool

val view_converged : t -> bool
(** Every live KV node has installed the full-group view. *)

val warmup : ?max_ticks:int -> t -> unit
(** Drive until the full-group view is installed everywhere and the
    system is quiescent. @raise Failure when the budget runs out. *)

val digests : t -> (Proc.t * string) list
(** Store digest of every live KV node. *)

val apply_rounds : t -> int
(** Total apply+ack rounds across all KV nodes (the batching win). *)

(** {1 The scripted SLO arm} *)

type fault =
  | Partition of Node_id.t list list
  | Heal
  | Crash of Proc.t
  | Restart of Proc.t
  | Spike of Loopback.knobs
      (** replace the hub-wide default knobs (lossy/delay spikes) *)

type report = {
  rounds : int;
  stats : (int * Kv_load.stats) list;  (** per load client *)
  sent : int;
  acked : int;
  dup_acks : int;
  retransmits : int;
  lost_acks : int;
      (** acked command ids missing from the home's stable store *)
  max_stall : float;  (** longest inter-ack gap, in hub ticks *)
  p50 : int;
  p99 : int;
  p999 : int;  (** merged latency percentiles, in hub ticks *)
  converged : bool;  (** every live store byte-identical *)
  digests : (Proc.t * string) list;
  apply_rounds : int;
  wire_delivered : int;  (** hub packets delivered over the whole run *)
  wire_bytes : int;  (** framed bytes of those packets *)
}

val slo_run :
  ?seed:int ->
  ?batch:bool ->
  ?arm:[ `Gcs | `Sym ] ->
  ?monitors:Vsgc_ioa.Monitor.t list ->
  ?n:int ->
  ?n_servers:int ->
  ?homes:Proc.t list ->
  ?clients:int ->
  ?rate:float ->
  ?count:int ->
  ?value_bytes:int ->
  ?retransmit_after:float ->
  ?script:(int * fault) list ->
  ?max_rounds:int ->
  unit ->
  report
(** Build a deployment, warm it up, attach [clients] load generators
    (client [100+i] homed at [homes[i mod _]], unique keys so acked
    values stay auditable), then drive to completion while firing the
    fault script — [(round, fault)] pairs relative to the end of
    warmup. Homes must not be crashed by the script: the lost-ack
    audit reads their stable stores. [monitors] are attached before
    warmup and their residual obligations judged at the end
    (default none, so existing fingerprints are undisturbed).
    @raise Failure when the round budget runs out.
    @raise Vsgc_ioa.Monitor.Violation from an attached monitor. *)
