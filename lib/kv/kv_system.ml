(* Loopback deployment of the replicated KV service under the fault
   surface — the harness behind bench E17 and `chaos.exe kv-slo`.

   KV server nodes (end-point + strict replica + service engine) and
   membership server nodes share one deterministic hub with the open-
   loop load clients. The drive loop is synchronous like
   [Net_system]'s: recv+handle every node in fixed order, step and
   ship, feed the load generators (acks in, due requests out), tick.
   Time is the hub's virtual clock, so latency percentiles and the
   stall SLO are measured in ticks and every run is replayable from
   (seed, script).

   The fault surface mirrors [Net_system]: partition classes force hub
   links down along the topology established at create (load clients
   always travel with their home node's class — a partition separates
   replicas, not a client from its chosen server), crash/restart reuse
   the §8 Crash/Recover actions, and a reborn node re-enters by the
   ordinary Join handshake, refolding its store from the post-transfer
   log.

   [slo_run] is the scripted arm: drive a load schedule across
   partition-heal / crash-rejoin events and measure the "delivery
   continues during reconfiguration" SLO — the max client-visible
   stall, and zero acknowledged-but-lost writes (every acked command
   id must be in its home replica's stable store, after dedup). *)

open Vsgc_types
open Vsgc_wire
module Node = Vsgc_net.Node
module Transport = Vsgc_net.Transport
module Loopback = Vsgc_net.Loopback

type load = { gen : Kv_load.t; tr : Transport.t; home : Proc.t }

type t = {
  hub : Loopback.hub;
  kv_nodes : (Proc.t * (Kv_node.t * Transport.t)) list;  (* ascending *)
  servers : (Server.t * (Node.t * Transport.t)) list;  (* ascending *)
  mutable loads : (int * load) list;  (* insertion order *)
  mutable base_links : (Node_id.t * Node_id.t) list;
  mutable partition : Node_id.t list list option;  (* None = healed *)
  mutable down : Node_id.t list;  (* currently crashed kv nodes *)
  mutable monitors : Vsgc_ioa.Monitor.t list;
}

let create ?(seed = 42) ?knobs ?(batch = false) ?(arm = `Gcs) ~n
    ?(n_servers = 1) () =
  if n_servers < 1 then invalid_arg "Kv_system.create: need n_servers >= 1";
  let hub = Loopback.hub ~seed ?knobs () in
  let kv_nodes =
    List.init n (fun p ->
        let attach = Server.of_int (p mod n_servers) in
        let node = Kv_node.create ~seed:(seed + 1 + p) ~batch ~arm ~attach p in
        (p, (node, Loopback.attach hub (Node_id.Client p))))
  in
  let servers =
    List.init n_servers (fun s ->
        let node =
          Node.create ~seed:(seed + 1 + n + s) (Node.Server_node { server = s })
        in
        (s, (node, Loopback.attach hub (Node_id.Server s))))
  in
  let base_links = ref [] in
  let connect tr a b =
    Transport.connect tr b;
    base_links := (a, b) :: !base_links
  in
  List.iter
    (fun (p, (_, tr)) ->
      List.iter
        (fun (q, _) ->
          if q > p then connect tr (Node_id.Client p) (Node_id.Client q))
        kv_nodes;
      connect tr (Node_id.Client p) (Node_id.Server (p mod n_servers)))
    kv_nodes;
  List.iter
    (fun (s, (_, tr)) ->
      List.iter
        (fun (s', _) ->
          if s' > s then connect tr (Node_id.Server s) (Node_id.Server s'))
        servers)
    servers;
  {
    hub;
    kv_nodes;
    servers;
    loads = [];
    base_links = List.rev !base_links;
    partition = None;
    down = [];
    monitors = [];
  }

(* Shared spec monitors over every KV node executor: the drive loop is
   single-threaded and visits nodes in a fixed order, so the monitors
   observe one deterministic merged trace (the [Net_system] pattern).
   Server executors are excluded — the membership actions they share
   with clients would otherwise be observed twice. *)
let attach_monitors t ms =
  t.monitors <- t.monitors @ ms;
  List.iter
    (fun m ->
      List.iter
        (fun (_, (node, _)) ->
          Vsgc_ioa.Executor.add_monitor (Kv_node.executor node) m)
        t.kv_nodes)
    ms

let finish t =
  List.iter
    (fun (m : Vsgc_ioa.Monitor.t) ->
      match m.at_end () with
      | [] -> ()
      | msg :: _ ->
          raise (Vsgc_ioa.Monitor.Violation { monitor = m.name; message = msg }))
    t.monitors

let hub t = t.hub
let now t = float_of_int (Loopback.now t.hub)

let kv_node t p =
  match List.assoc_opt p t.kv_nodes with
  | Some (node, _) -> node
  | None -> invalid_arg (Fmt.str "Kv_system.kv_node: no node %a" Proc.pp p)

let procs t = List.map fst t.kv_nodes

(* -- Fault surface -------------------------------------------------------- *)

let is_down t id = List.exists (Node_id.equal id) t.down

(* Load clients always travel with their home's partition class: the
   partition under test separates replicas from each other, not a
   client from the server it is connected to. *)
let extend_classes t classes =
  List.map
    (fun cls ->
      cls
      @ List.filter_map
          (fun (c, l) ->
            if List.exists (Node_id.equal (Node_id.Client l.home)) cls then
              Some (Node_id.Kv_client c)
            else None)
          t.loads)
    classes

let same_class classes a b =
  List.exists
    (fun cls ->
      List.exists (Node_id.equal a) cls && List.exists (Node_id.equal b) cls)
    classes

let apply_links t =
  List.iter
    (fun (a, b) ->
      let up =
        (match t.partition with
        | None -> true
        | Some classes -> same_class (extend_classes t classes) a b)
        && (not (is_down t a))
        && not (is_down t b)
      in
      Loopback.set_link t.hub a b ~up)
    t.base_links

let set_partition t classes =
  t.partition <- Some classes;
  apply_links t

let heal t =
  t.partition <- None;
  apply_links t

let crash t p =
  let node = kv_node t p in
  if Kv_node.crashed node then
    invalid_arg (Fmt.str "Kv_system.crash: %a already crashed" Proc.pp p);
  Kv_node.inject node (Action.Crash p);
  t.down <- Node_id.Client p :: t.down;
  apply_links t;
  Loopback.discard t.hub (Node_id.Client p)

let restart t p =
  let node = kv_node t p in
  if not (is_down t (Node_id.Client p)) then
    invalid_arg (Fmt.str "Kv_system.restart: %a not crashed" Proc.pp p);
  t.down <-
    List.filter (fun id -> not (Node_id.equal id (Node_id.Client p))) t.down;
  Kv_node.inject node (Action.Recover p);
  apply_links t

(* -- Load clients --------------------------------------------------------- *)

let add_load t ~home (conf : Kv_load.conf) =
  if not (List.mem_assoc home t.kv_nodes) then
    invalid_arg (Fmt.str "Kv_system.add_load: no home %a" Proc.pp home);
  if List.mem_assoc conf.Kv_load.client t.loads then
    invalid_arg
      (Fmt.str "Kv_system.add_load: client %d exists" conf.Kv_load.client);
  let id = Node_id.Kv_client conf.Kv_load.client in
  let tr = Loopback.attach t.hub id in
  Transport.connect tr (Node_id.Client home);
  t.base_links <- t.base_links @ [ (id, Node_id.Client home) ];
  let gen = Kv_load.create ~start:(now t) conf in
  t.loads <- t.loads @ [ (conf.Kv_load.client, { gen; tr; home }) ];
  apply_links t;
  gen

let loads t = List.map (fun (c, l) -> (c, l.gen, l.home)) t.loads

(* -- Driving -------------------------------------------------------------- *)

let quiescent t =
  Loopback.idle t.hub
  && List.for_all (fun (_, (n, _)) -> Kv_node.quiescent n) t.kv_nodes
  && List.for_all (fun (_, (n, _)) -> Node.quiescent n) t.servers

let all_sent t = List.for_all (fun (_, l) -> Kv_load.all_sent l.gen) t.loads

(* One synchronous round: wire into every node, step and ship, then
   feed the load generators — acks dated at the current virtual time,
   due requests (new arrivals + retransmissions) onto the wire. *)
let round t =
  List.iter
    (fun (_, (node, tr)) -> List.iter (Kv_node.handle node) (Transport.recv tr))
    t.kv_nodes;
  List.iter
    (fun (_, (node, tr)) -> List.iter (Node.handle node) (Transport.recv tr))
    t.servers;
  let tick_now = now t in
  List.iter
    (fun (_, l) ->
      List.iter
        (fun ev ->
          match ev with
          | Transport.Received (_, Packet.Kv_resp resp) ->
              Kv_load.on_response l.gen ~now:tick_now resp
          | _ -> ())
        (Transport.recv l.tr))
    t.loads;
  List.iter
    (fun (_, (node, tr)) ->
      List.iter
        (fun (dst, pkt) -> Transport.send tr dst pkt)
        (Kv_node.step node))
    t.kv_nodes;
  List.iter
    (fun (_, (node, tr)) ->
      List.iter (fun (dst, pkt) -> Transport.send tr dst pkt) (Node.step node))
    t.servers;
  List.iter
    (fun (_, l) ->
      List.iter
        (fun req ->
          Transport.send l.tr (Node_id.Client l.home) (Packet.Kv_req req))
        (Kv_load.due l.gen ~now:tick_now))
    t.loads;
  Loopback.tick t.hub

let run ?(max_ticks = 200_000) t =
  let budget = ref max_ticks in
  while (not (quiescent t && all_sent t)) && !budget > 0 do
    round t;
    decr budget
  done;
  if !budget = 0 then failwith "Kv_system.run: tick budget exhausted"

let run_ticks t k =
  for _ = 1 to k do
    round t
  done

(* Every live kv node installed the full group view. *)
let view_converged t =
  let full = Proc.Set.of_list (procs t) in
  List.for_all
    (fun (p, (node, _)) ->
      is_down t (Node_id.Client p)
      || Proc.Set.equal (View.set (Kv_node.current_view node)) full)
    t.kv_nodes

let warmup ?(max_ticks = 20_000) t =
  let budget = ref max_ticks in
  while (not (view_converged t && quiescent t)) && !budget > 0 do
    round t;
    decr budget
  done;
  if !budget = 0 then failwith "Kv_system.warmup: view never converged"

let digests t =
  List.filter_map
    (fun (p, (node, _)) ->
      if is_down t (Node_id.Client p) then None
      else Some (p, Kv_node.digest node))
    t.kv_nodes

let apply_rounds t =
  List.fold_left
    (fun acc (_, (node, _)) ->
      acc + Kv_service.apply_rounds (Kv_node.service node))
    0 t.kv_nodes

(* -- The scripted SLO arm ------------------------------------------------- *)

type fault =
  | Partition of Node_id.t list list
  | Heal
  | Crash of Proc.t
  | Restart of Proc.t
  | Spike of Loopback.knobs  (* replace the hub-wide default knobs *)

type report = {
  rounds : int;
  stats : (int * Kv_load.stats) list;  (* per load client *)
  sent : int;
  acked : int;
  dup_acks : int;
  retransmits : int;
  lost_acks : int;  (* acked ids missing from the home's stable store *)
  max_stall : float;  (* longest inter-ack gap, in hub ticks *)
  p50 : int;
  p99 : int;
  p999 : int;  (* merged latency percentiles, in hub ticks *)
  converged : bool;  (* every live store byte-identical *)
  digests : (Proc.t * string) list;
  apply_rounds : int;
  wire_delivered : int;  (* hub packets delivered over the whole run *)
  wire_bytes : int;  (* framed bytes of those packets *)
}

let apply_fault t = function
  | Partition classes -> set_partition t classes
  | Heal -> heal t
  | Crash p -> crash t p
  | Restart p -> restart t p
  | Spike k -> Loopback.set_knobs t.hub k

(* Drive loads across a fault script and settle; the script's round
   indices are relative to the end of warmup. Homes must not be
   crashed by the script (the lost-ack audit reads their stable
   stores). *)
let slo_run ?(seed = 42) ?(batch = false) ?(arm = `Gcs) ?(monitors = [])
    ?(n = 3) ?(n_servers = 2) ?(homes = [ 0 ]) ?(clients = 1) ?(rate = 0.5)
    ?(count = 200) ?(value_bytes = 32) ?(retransmit_after = 0.) ?(script = [])
    ?(max_rounds = 200_000) () =
  let t = create ~seed ~batch ~arm ~n ~n_servers () in
  attach_monitors t monitors;
  warmup t;
  let gens =
    List.init clients (fun i ->
        let home = List.nth homes (i mod List.length homes) in
        let conf =
          {
            Kv_load.client = 100 + i;
            rate;
            count;
            key_space = count;  (* unique keys: acked values stay auditable *)
            value_bytes;
            retransmit_after;
          }
        in
        (100 + i, add_load t ~home conf, home))
  in
  let script = List.sort (fun (a, _) (b, _) -> compare a b) script in
  let remaining = ref script in
  let r = ref 0 in
  let finished () = !remaining = [] && all_sent t && quiescent t in
  while (not (finished ())) && !r < max_rounds do
    (let rec fire () =
       match !remaining with
       | (at, f) :: rest when at <= !r ->
           apply_fault t f;
           remaining := rest;
           fire ()
       | _ -> ()
     in
     fire ());
    round t;
    incr r
  done;
  if !r >= max_rounds then failwith "Kv_system.slo_run: round budget exhausted";
  finish t;
  (* Audit: every acknowledged command id must be in its home
     replica's stable store (dedup by id — the id set ignores how many
     times a retransmitted command was ordered). *)
  let lost_acks =
    List.fold_left
      (fun acc (_, gen, home) ->
        let store = Kv_node.store (kv_node t home) in
        List.fold_left
          (fun acc (client, seq) ->
            if Kv_store.applied store ~client ~seq then acc else acc + 1)
          acc (Kv_load.acked_ids gen))
      0 gens
  in
  let ds = digests t in
  let converged =
    match ds with [] -> true | (_, d0) :: rest -> List.for_all (fun (_, d) -> String.equal d d0) rest
  in
  let merged = Histogram.create () in
  List.iter (fun (_, gen, _) -> Histogram.merge ~into:merged (Kv_load.histogram gen)) gens;
  let stats = List.map (fun (c, gen, _) -> (c, Kv_load.stats gen)) gens in
  {
    rounds = !r;
    stats;
    sent = List.fold_left (fun a (_, g, _) -> a + Kv_load.sent g) 0 gens;
    acked = List.fold_left (fun a (_, g, _) -> a + Kv_load.acked g) 0 gens;
    dup_acks = List.fold_left (fun a (_, g, _) -> a + Kv_load.dup_acks g) 0 gens;
    retransmits =
      List.fold_left (fun a (_, g, _) -> a + Kv_load.retransmits g) 0 gens;
    lost_acks;
    max_stall =
      List.fold_left (fun a (_, g, _) -> Float.max a (Kv_load.max_stall g)) 0. gens;
    p50 = Histogram.percentile merged 0.5;
    p99 = Histogram.percentile merged 0.99;
    p999 = Histogram.percentile merged 0.999;
    converged;
    digests = ds;
    apply_rounds = apply_rounds t;
    wire_delivered = Loopback.delivered t.hub;
    wire_bytes = Loopback.delivered_bytes t.hub;
  }
