(* Monitor for the Self Delivery property
   (paper §4.1.4, Figure 7, automaton SELF : SPEC).

   An end-point may not deliver a new view without having delivered to
   its own application every message that application sent in the
   current view: at every view_p event,
   last_dlvrd[p][p] = LastIndexOf(msgs[p][current_view[p]]). *)

open Vsgc_types
module M = Vsgc_ioa.Monitor

let monitor ?(name = "self_spec") () =
  let t = Tracker.create () in
  let on_action (a : Action.t) =
    (match a with
    | Action.App_view (p, _, _) ->
        let v = Tracker.current_view t p in
        let sent = Tracker.sent_in_view t p v in
        let delivered = Tracker.last_dlvrd t ~from:p ~at:p in
        M.check ~monitor:name (delivered = sent)
          "Self Delivery violated: %a delivered %d of its own %d messages \
           before leaving view %a"
          Proc.pp p delivered sent View.Id.pp (View.id v)
    | _ -> ());
    Tracker.update t a
  in
  M.make name on_action

(* Self-stabilization (DESIGN.md §13): the detect-and-rejoin contract.
   Crashing — whether scheduled or triggered by a corruption guard — is
   only acceptable if the end-point completes the §8 rejoin: a Recover,
   and then a fresh view installed at the application. A trace that
   ends with the obligation open diverged from the self-stabilization
   contract (it "healed" by staying dead). Judged as residual
   obligations on the whole trace, so mid-run downtime is fine. *)
let rejoin ?(name = "rejoin_spec") () =
  let pending : (Proc.t, [ `Down | `Recovering ]) Hashtbl.t = Hashtbl.create 7 in
  let on_action (a : Action.t) =
    match a with
    | Action.Crash p -> Hashtbl.replace pending p `Down
    | Action.Recover p ->
        if Hashtbl.find_opt pending p = Some `Down then
          Hashtbl.replace pending p `Recovering
    | Action.App_view (p, _, _) ->
        if Hashtbl.find_opt pending p = Some `Recovering then
          Hashtbl.remove pending p
    | _ -> ()
  in
  let at_end () =
    Hashtbl.fold
      (fun p st acc ->
        (match st with
        | `Down -> Fmt.str "%a crashed and never recovered" Proc.pp p
        | `Recovering ->
            Fmt.str "%a recovered but never re-installed a view" Proc.pp p)
        :: acc)
      pending []
    |> List.sort compare
  in
  M.make ~at_end name on_action
