(** Trace monitor for the symmetric (Skeen-style) total-order arm
    (DESIGN.md §16): an independent reference machine per process,
    driven by the observable GCS trace with payloads decoded via
    {!Vsgc_wire.Sym_msg}, checks that

    - every {!Vsgc_types.Action.Sym_deliver} report matches the next
      delivery the specification's condition admits (an entry delivers
      only once every view member is heard at or beyond its timestamp);
    - per-sender broadcast timestamps strictly increase in wire order;
    - flush announcements name the sender's actual view, match the
      reference's own flushed-chunk digest, and agree across all
      members with the same (view id, transitional set);
    - at the end of the trace, no admitted delivery is left
      unreported. *)

val monitor : ?name:string -> unit -> Vsgc_ioa.Monitor.t
