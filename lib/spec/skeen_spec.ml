(* Monitor for the symmetric (Skeen-style) total-order arm
   (DESIGN.md §16): an executable restatement of the delivery condition
   of the adaptive protocol's symmetric endpoint [13], checked against
   the implementation's {!Action.Sym_deliver} reports.

   The monitor runs an independent reference machine per process,
   driven only by the externally observable GCS trace (App_send /
   App_deliver / App_view / Crash) with payloads decoded via
   {!Vsgc_wire.Sym_msg} — it shares no code with {!Tord_symmetric}.
   Reference deliveries are gated by the specification's condition
   — an entry <ts, sender> may deliver only once every current view
   member has been heard at or beyond ts — and enter a per-process
   expected-delivery FIFO. Each Sym_deliver report must match its
   process's FIFO head exactly; a report with an empty FIFO is an
   early delivery, a mismatched head is an ordering divergence.

   Also checked:
   - per-sender broadcast timestamps strictly increase in wire order
     (what makes the deliverability gate sound);
   - a Flush announcement names the view its sender is actually in,
     matches the digest the reference computed for that process's own
     flushed chunk, and agrees with every other announcement for the
     same (view id, transitional set) — Virtual Synchrony makes
     transitional-set members flush identically;
   - at the end of the trace, every expected-delivery FIFO is empty
     (the implementation reported everything the condition admitted).

   Crash clears the process's reference state and its broadcast
   floor — a §8 rejoin restarts timestamps from scratch, which is
   sound because the installing view change flushed everyone's
   pending and reset the heard maps. *)

open Vsgc_types
module M = Vsgc_ioa.Monitor
module Sym_msg = Vsgc_wire.Sym_msg

type entry = { ts : int; sender : Proc.t; payload : string }

let entry_compare a b =
  match Int.compare a.ts b.ts with 0 -> Proc.compare a.sender b.sender | c -> c

(* Mirror of the wire contract's flushed-chunk fingerprint
   ({!Tord_symmetric.flush_digest}) — recomputed independently here so
   the monitor verifies the announced digest rather than echoing it. *)
let flush_digest entries =
  let buf = Buffer.create 64 in
  List.iteri
    (fun i (e : entry) ->
      Buffer.add_string buf
        (Fmt.str "%d:%d:%a:%d;" i e.ts Proc.pp e.sender (String.length e.payload));
      Buffer.add_string buf e.payload)
    entries;
  Digest.to_hex (Digest.string (Buffer.contents buf))

type machine = {
  mutable members : Proc.Set.t;  (* current view's membership *)
  mutable vid : View.Id.t;
  mutable heard : int Proc.Map.t;
  mutable pending : entry list;  (* sorted by (ts, sender) *)
  expected : (Proc.t * int * string) Queue.t;  (* reference-gated deliveries *)
  mutable own_digest : string option;  (* reference's flush digest, current view *)
}

let monitor ?(name = "skeen_spec") () =
  let machines : (Proc.t, machine) Hashtbl.t = Hashtbl.create 7 in
  let last_bcast : (Proc.t, int) Hashtbl.t = Hashtbl.create 7 in
  (* first announced digest per (new view id, transitional set) *)
  let flush_table : (View.Id.t * Proc.Set.t, string * Proc.t) Hashtbl.t =
    Hashtbl.create 7
  in
  (* the (view id, transitional set) of each process's latest view event *)
  let installed : (Proc.t, View.Id.t * Proc.Set.t) Hashtbl.t = Hashtbl.create 7 in
  let machine p =
    match Hashtbl.find_opt machines p with
    | Some m -> m
    | None ->
        let m =
          {
            members = Proc.Set.singleton p;
            vid = View.id (View.initial p);
            heard = Proc.Map.empty;
            pending = [];
            expected = Queue.create ();
            own_digest = None;
          }
        in
        Hashtbl.replace machines p m;
        m
  in
  let decode p payload =
    match Sym_msg.of_payload payload with
    | Ok m -> m
    | Error e ->
        M.violate ~monitor:name
          "non-symmetric payload in a Skeen-monitored run at %a: %a" Proc.pp p
          Bin.pp_error e
  in
  let insert_sorted e l =
    let rec go = function
      | x :: rest when entry_compare x e < 0 -> x :: go rest
      | rest -> e :: rest
    in
    go l
  in
  let deliverable m (e : entry) =
    Proc.Set.for_all
      (fun q -> Proc.Map.find_default ~default:0 q m.heard >= e.ts)
      m.members
  in
  let drain m =
    let rec go () =
      match m.pending with
      | e :: rest when deliverable m e ->
          m.pending <- rest;
          Queue.add (e.sender, e.ts, e.payload) m.expected;
          go ()
      | _ -> ()
    in
    go ()
  in
  let note m ~sender ~ts =
    m.heard <-
      Proc.Map.add sender
        (max ts (Proc.Map.find_default ~default:0 sender m.heard))
        m.heard
  in
  let on_action (a : Action.t) =
    match a with
    | Action.App_send (p, msg) -> (
        let m = decode p (Msg.App_msg.payload msg) in
        let ts = Sym_msg.ts m in
        let floor = Option.value ~default:0 (Hashtbl.find_opt last_bcast p) in
        M.check ~monitor:name (ts > floor)
          "broadcast timestamps not strictly increasing at %a: %a after t%d"
          Proc.pp p Sym_msg.pp m floor;
        Hashtbl.replace last_bcast p ts;
        match m with
        | Sym_msg.Flush { view; digest; _ } -> (
            let mach = machine p in
            M.check ~monitor:name (View.Id.equal view mach.vid)
              "%a announces a flush for view %a but is in view %a" Proc.pp p
              View.Id.pp view View.Id.pp mach.vid;
            (match mach.own_digest with
            | Some own ->
                M.check ~monitor:name (String.equal digest own)
                  "%a announces flush digest %s for view %a; its own flushed \
                   chunk digests to %s"
                  Proc.pp p digest View.Id.pp view own
            | None -> ());
            match Hashtbl.find_opt installed p with
            | Some (vid, tset) when View.Id.equal vid view -> (
                match Hashtbl.find_opt flush_table (vid, tset) with
                | Some (first, by) ->
                    M.check ~monitor:name (String.equal digest first)
                      "transitional-set flush divergence in view %a: %a \
                       announces %s, %a announced %s"
                      View.Id.pp vid Proc.pp p digest Proc.pp by first
                | None -> Hashtbl.replace flush_table (vid, tset) (digest, p))
            | _ -> ())
        | Sym_msg.Data _ | Sym_msg.Ack _ -> ())
    | Action.App_deliver (p, q, msg) -> (
        let mach = machine p in
        let m = decode p (Msg.App_msg.payload msg) in
        let ts = Sym_msg.ts m in
        note mach ~sender:q ~ts;
        (match m with
        | Sym_msg.Data { ts; body } ->
            mach.pending <- insert_sorted { ts; sender = q; payload = body } mach.pending
        | Sym_msg.Ack _ | Sym_msg.Flush _ -> ());
        drain mach)
    | Action.App_view (p, v, tset) ->
        let mach = machine p in
        let flushed = List.sort entry_compare mach.pending in
        List.iter (fun e -> Queue.add (e.sender, e.ts, e.payload) mach.expected) flushed;
        mach.pending <- [];
        mach.heard <- Proc.Map.empty;
        mach.members <- View.set v;
        mach.vid <- View.id v;
        mach.own_digest <- Some (flush_digest flushed);
        Hashtbl.replace installed p (View.id v, tset)
    | Action.Sym_deliver (p, sender, ts, payload) -> (
        let mach = machine p in
        match Queue.take_opt mach.expected with
        | None ->
            M.violate ~monitor:name
              "early delivery at %a: <%a, t%d, %S> delivered with no entry \
               satisfying the deliverability condition"
              Proc.pp p Proc.pp sender ts payload
        | Some (sender', ts', payload') ->
            M.check ~monitor:name
              (Proc.equal sender sender' && ts = ts' && String.equal payload payload')
              "delivery order divergence at %a: delivered <%a, t%d, %S>, the \
               deliverability condition admits <%a, t%d, %S> next"
              Proc.pp p Proc.pp sender ts payload Proc.pp sender' ts' payload')
    | Action.Crash p ->
        Hashtbl.remove machines p;
        Hashtbl.remove last_bcast p;
        Hashtbl.remove installed p
    | _ -> ()
  in
  let at_end () =
    Hashtbl.fold
      (fun p m acc ->
        if Queue.is_empty m.expected then acc
        else
          Fmt.str
            "%a: %d deliveries admitted by the deliverability condition were \
             never reported"
            Proc.pp p (Queue.length m.expected)
          :: acc)
      machines []
    |> List.sort compare
  in
  M.make ~at_end name on_action
