(** Monitor bundles. *)

val safety : unit -> Vsgc_ioa.Monitor.t list
(** Every safety monitor of §4 plus the environment specs — what
    monitored integration runs attach. *)

val wv_only : unit -> Vsgc_ioa.Monitor.t list
(** The monitors meaningful for the pure within-view layer. *)

val net : unit -> Vsgc_ioa.Monitor.t list
(** The service-level monitors (WV_RFIFO, VS_RFIFO, TRANS_SET, SELF)
    for networked runs: they consume only client-side actions, so one
    shared instance of each can watch a multi-executor deployment. *)

val net_selfstab : unit -> Vsgc_ioa.Monitor.t list
(** {!net} plus {!Self_spec.rejoin}: the fault layer's bundle — every
    crash must complete the §8 rejoin (DESIGN.md §13). *)

val net_sym : unit -> Vsgc_ioa.Monitor.t list
(** {!net_selfstab} plus {!Skeen_spec.monitor}: the symmetric-arm
    battery (DESIGN.md §16) — the GCS properties hold underneath, and
    the arm's deliveries must satisfy the Skeen condition. *)
