(** Monitor for the Self Delivery property (paper §4.1.4, Figure 7):
    at every view event, the process has delivered to its own
    application every message that application sent in the current
    view. *)

val monitor : ?name:string -> unit -> Vsgc_ioa.Monitor.t

val rejoin : ?name:string -> unit -> Vsgc_ioa.Monitor.t
(** The detect-and-rejoin contract (DESIGN.md §13): every crash —
    scheduled or triggered by a corruption guard — must be followed by
    a recovery and a fresh view at the application, judged as residual
    obligations at the end of the trace. Distinguishes
    "detected-and-rejoined" from "healed by staying dead". *)
