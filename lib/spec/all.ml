(* Convenience: every safety monitor at once — what the integration and
   property-based tests attach to monitored runs. *)

let safety () =
  [
    Mbrshp_spec.monitor ();
    Co_rfifo_spec.monitor ();
    Wv_rfifo_spec.monitor ();
    Vs_rfifo_spec.monitor ();
    Trans_set_spec.monitor ();
    Self_spec.monitor ();
    Client_spec.monitor ();
  ]

(* Monitors meaningful for the pure within-view layer (`Wv endpoints):
   no virtual synchrony, transitional sets, or self-delivery claims. *)
let wv_only () =
  [ Mbrshp_spec.monitor (); Co_rfifo_spec.monitor (); Wv_rfifo_spec.monitor () ]

(* The service-level monitors for networked runs: they consume only
   client-side actions (App_send/App_deliver/App_view/Crash), which
   occur exactly once each — at the client node's executor — so a
   per-node deployment can share one instance of each across all
   client executors. The environment specs (membership, CO_RFIFO) are
   excluded: over the wire those automata are replaced by real
   packets, and their input-enabledness assumptions do not transfer. *)
let net () =
  [
    Wv_rfifo_spec.monitor ();
    Vs_rfifo_spec.monitor ();
    Trans_set_spec.monitor ();
    Self_spec.monitor ();
  ]

(* The networked bundle plus the self-stabilization rejoin contract:
   what the fault layer attaches, so a client that crashes (or is
   crashed by a corruption guard) and never completes the §8 rejoin is
   classified as a violation rather than a quietly shrunken system. *)
let net_selfstab () = net () @ [ Self_spec.rejoin () ]

(* The symmetric-arm battery: the GCS properties still hold underneath
   (same endpoints, same wire), plus the Skeen delivery-condition
   monitor over the arm's Sym_deliver reports. *)
let net_sym () = net_selfstab () @ [ Skeen_spec.monitor () ]
