(** The replicated key-value state machine over the symmetric total
    order (DESIGN.md §16) — {!Replica}'s motif with
    {!Vsgc_totalorder.Tord_sym_client} underneath. Commands, snapshots
    and the state fold are {!Replica}'s verbatim, so both arms' states
    are the same pure function of their ordered logs and cross-arm
    digest comparison is meaningful. *)

open Vsgc_types
module Smap = Replica.Smap
module Tord_sym_client = Vsgc_totalorder.Tord_sym_client
module Tord_symmetric = Vsgc_totalorder.Tord_symmetric

type t = {
  tc : Tord_sym_client.t;
  me : Proc.t;
  snapshot_bytes : int;  (** total snapshot payload bytes multicast *)
  snapshots_sent : int;
  strict : bool;  (** raise {!Replica.Codec_drift} on Unknown commands *)
  unknowns : int;  (** Unknown commands tolerated (non-strict mode) *)
}

val initial : ?strict:bool -> Proc.t -> t
(** [strict] defaults to [false] here; the component {!def} defaults
    it to [true] (as for {!Replica}). *)

val unknowns : t -> int

(** {1 State (the same pure fold as {!Replica})} *)

val state : t -> string Smap.t
val version : t -> int
val get : t -> string -> string option

(** {1 Cursor over the ordered log} *)

val log_length : t -> int
val ordered_from : t -> int -> string list

(** {1 Scripting} *)

val set : t ref -> key:string -> value:string -> unit

val write :
  t ref -> client:int -> seq:int -> key:string -> value:string -> unit

(** {1 Component} *)

val outputs : t -> Action.t list
val accepts : Proc.t -> Action.t -> bool

val apply : t -> Action.t -> t
(** @raise Replica.Codec_drift in strict mode on an Unknown ordered
    command. *)

val def : ?strict:bool -> Proc.t -> t Vsgc_ioa.Component.def
val component : ?strict:bool -> Proc.t -> Vsgc_ioa.Component.packed * t ref
