(* The replicated key-value state machine over the SYMMETRIC total
   order (DESIGN.md §16) — the same application motif as {!Replica},
   with {!Vsgc_totalorder.Tord_sym_client} replacing the sequencer
   arm's {!Vsgc_totalorder.Tord_client}.

   Commands and snapshots reuse {!Replica}'s codec and fold verbatim:
   the state of either arm is the same pure function of its totally
   ordered log, which is what makes the bake-off's cross-arm digest
   comparison meaningful. Snapshots follow the same transitional-set
   rule (on a merge, the minimum member of each transitional set ships
   one snapshot through the total order). *)

open Vsgc_types
module Smap = Replica.Smap
module Tord_sym_client = Vsgc_totalorder.Tord_sym_client
module Tord_symmetric = Vsgc_totalorder.Tord_symmetric

type t = {
  tc : Tord_sym_client.t;
  me : Proc.t;
  snapshot_bytes : int;  (* total snapshot payload bytes multicast *)
  snapshots_sent : int;
  strict : bool;  (* raise on Unknown ordered commands *)
  unknowns : int;  (* Unknown commands tolerated (non-strict mode) *)
}

let initial ?(strict = false) me =
  {
    tc = Tord_sym_client.initial me;
    me;
    snapshot_bytes = 0;
    snapshots_sent = 0;
    strict;
    unknowns = 0;
  }

let unknowns t = t.unknowns

(* -- Deterministic state: the same fold as the sequencer arm -------------- *)

let state t = snd (Replica.fold_state (Tord_sym_client.total_order t.tc))
let version t = fst (Replica.fold_state (Tord_sym_client.total_order t.tc))
let get t key = Smap.find_opt key (state t)

(* -- Cursor over the ordered log (for the incremental KV store) ----------- *)

let log_length t = Tord_symmetric.total_count (Tord_sym_client.core t.tc)

let ordered_from t k =
  List.map
    (fun (e : Tord_symmetric.entry) -> e.Tord_symmetric.payload)
    (Tord_symmetric.entries_from (Tord_sym_client.core t.tc) k)

(* -- Scripting API --------------------------------------------------------- *)

let set (r : t ref) ~key ~value =
  let tc = ref !r.tc in
  Tord_sym_client.push tc (Replica.encode_set ~key ~value);
  r := { !r with tc = !tc }

let write (r : t ref) ~client ~seq ~key ~value =
  let tc = ref !r.tc in
  Tord_sym_client.push tc (Replica.encode_write ~client ~seq ~key ~value);
  r := { !r with tc = !tc }

(* -- Component -------------------------------------------------------------- *)

let outputs t = Tord_sym_client.outputs t.tc
let accepts me = Tord_sym_client.accepts me

let should_send_snapshot t view tset =
  let joined = not (Proc.Set.equal (View.set view) tset) in
  joined && Proc.Set.min_elt_opt tset = Some t.me

(* Same contract as {!Replica.check_unknowns}: strict mode makes codec
   drift loud the moment an undecodable command becomes totally
   ordered. *)
let check_unknowns t ~before =
  let entries = Tord_symmetric.entries_from (Tord_sym_client.core t.tc) before in
  let fresh =
    List.fold_left
      (fun acc (e : Tord_symmetric.entry) ->
        match Replica.decode e.Tord_symmetric.payload with
        | Replica.Unknown -> acc + 1
        | _ -> acc)
      0 entries
  in
  if fresh = 0 then t
  else if t.strict then
    raise
      (Replica.Codec_drift
         (Fmt.str "sym replica %a: %d undecodable ordered command%s" Proc.pp t.me
            fresh
            (if fresh = 1 then "" else "s")))
  else { t with unknowns = t.unknowns + fresh }

let apply t (a : Action.t) =
  let before = Tord_symmetric.total_count (Tord_sym_client.core t.tc) in
  let tc = Tord_sym_client.apply t.tc a in
  let t = check_unknowns { t with tc } ~before in
  match a with
  | Action.App_view (_, view, tset) when not tc.Tord_sym_client.crashed ->
      if should_send_snapshot t view tset then begin
        let snap = Replica.encode_snapshot ~version:(version t) (state t) in
        let tcr = ref t.tc in
        Tord_sym_client.push tcr snap;
        { t with
          tc = !tcr;
          snapshot_bytes = t.snapshot_bytes + String.length snap;
          snapshots_sent = t.snapshots_sent + 1 }
      end
      else t
  | _ -> t

(* Client-role component (wraps Tord_sym_client): co-located at me. *)
let footprint me (a : Action.t) =
  let open Vsgc_ioa.Footprint in
  match a with
  | Action.App_send (p, _) | Action.Block_ok p | Action.App_deliver (p, _, _)
  | Action.App_view (p, _, _) | Action.Block p | Action.Crash p | Action.Recover p
  | Action.Sym_deliver (p, _, _, _)
    when Proc.equal p me -> rw [ Proc_state me ]
  | _ -> empty

let emits me (a : Action.t) =
  match a with
  | Action.App_send (p, _) | Action.Block_ok p | Action.Sym_deliver (p, _, _, _) ->
      Proc.equal p me
  | _ -> false

let observe me (st : t) =
  [ (Vsgc_ioa.Footprint.Proc_state me, Vsgc_ioa.Component.digest st) ]

(* Strict defaults ON under the executor, as for {!Replica.def}. *)
let def ?(strict = true) me : t Vsgc_ioa.Component.def =
  {
    name = Fmt.str "sym_replica_%a" Proc.pp me;
    init = initial ~strict me;
    accepts = accepts me;
    outputs;
    apply;
    footprint = footprint me;
    emits = emits me;
    observe = observe me;
  }

let component ?strict me =
  let d = def ?strict me in
  let r = ref d.Vsgc_ioa.Component.init in
  (Vsgc_ioa.Component.pack_with_ref d r, r)
