(* A replicated key-value state machine over the totally ordered
   multicast layer — the application motif the paper gives for Virtual
   Synchrony (§4.1.2): "a group communication system that supports
   Virtual Synchrony allows processes to avoid such costly exchange
   among processes that continue together from one view to the next."

   Commands ("set key value") are multicast through the total order, so
   replicas that stay together remain byte-identical with no extra
   synchronization. When groups merge, state transfer is needed only
   ACROSS groups: the minimum member of each transitional set multicasts
   one snapshot, and replicas adopt the highest-versioned snapshot they
   deliver (all through the same total order, so deterministically).
   The [transfer_blind] ablation models a system without transitional
   sets, in which every member must ship its snapshot at every view
   change — the cost difference is measured by bench E8. *)

open Vsgc_types
module Smap = Map.Make (String)
module Tord_client = Vsgc_totalorder.Tord_client
module Tord_core = Vsgc_totalorder.Tord_core

exception Codec_drift of string
(* Raised in strict mode when an undecodable command reaches the
   totally ordered log — codec drift between writers and replicas
   should be loud, not silently skipped. *)

type t = {
  tc : Tord_client.t;
  me : Proc.t;
  transfer_blind : bool;  (* ablation: no transitional-set knowledge *)
  snapshot_bytes : int;  (* total snapshot payload bytes multicast *)
  snapshots_sent : int;
  strict : bool;  (* raise on Unknown ordered commands *)
  unknowns : int;  (* Unknown commands tolerated (non-strict mode) *)
}

let initial ?(transfer_blind = false) ?(strict = false) ?batch_orders me =
  {
    tc = Tord_client.initial ?batch_orders me;
    me;
    transfer_blind;
    snapshot_bytes = 0;
    snapshots_sent = 0;
    strict;
    unknowns = 0;
  }

let unknowns t = t.unknowns

(* -- Command and snapshot encoding (inside total-order payloads) --------- *)

let encode_set ~key ~value = Fmt.str "S%s=%s" key value

(* A KV-service write: like [Set] but stamped with the originating load
   client's command id (client, seq), so retransmissions stay
   idempotent and acknowledgements dedup by id (DESIGN.md §15). *)
let encode_write ~client ~seq ~key ~value =
  Fmt.str "W%d:%d:%s=%s" client seq key value

let encode_snapshot ~version kv =
  let body =
    Smap.bindings kv |> List.map (fun (k, v) -> k ^ "=" ^ v) |> String.concat ";"
  in
  Fmt.str "X%d:%s" version body

type cmd =
  | Set of string * string
  | Write of { client : int; seq : int; key : string; value : string }
  | Snapshot of int * string Smap.t
  | Unknown

let decode s =
  if String.length s = 0 then Unknown
  else
    match s.[0] with
    | 'S' -> (
        match String.index_opt s '=' with
        | Some i ->
            Set (String.sub s 1 (i - 1), String.sub s (i + 1) (String.length s - i - 1))
        | None -> Unknown)
    | 'W' -> (
        let body = String.sub s 1 (String.length s - 1) in
        match String.index_opt body ':' with
        | None -> Unknown
        | Some i -> (
            match String.index_from_opt body (i + 1) ':' with
            | None -> Unknown
            | Some j -> (
                match
                  ( int_of_string_opt (String.sub body 0 i),
                    int_of_string_opt (String.sub body (i + 1) (j - i - 1)) )
                with
                | Some client, Some seq -> (
                    let rest =
                      String.sub body (j + 1) (String.length body - j - 1)
                    in
                    match String.index_opt rest '=' with
                    | Some k ->
                        Write
                          {
                            client;
                            seq;
                            key = String.sub rest 0 k;
                            value =
                              String.sub rest (k + 1)
                                (String.length rest - k - 1);
                          }
                    | None -> Unknown)
                | _ -> Unknown)))
    | 'X' -> (
        match String.index_opt s ':' with
        | Some i -> (
            match int_of_string_opt (String.sub s 1 (i - 1)) with
            | Some version ->
                let body = String.sub s (i + 1) (String.length s - i - 1) in
                let kv =
                  List.fold_left
                    (fun acc pair ->
                      match String.index_opt pair '=' with
                      | Some j ->
                          Smap.add (String.sub pair 0 j)
                            (String.sub pair (j + 1) (String.length pair - j - 1))
                            acc
                      | None -> acc)
                    Smap.empty
                    (if body = "" then [] else String.split_on_char ';' body)
                in
                Snapshot (version, kv)
            | None -> Unknown)
        | None -> Unknown)
    | _ -> Unknown

(* -- Deterministic state: fold the total order ---------------------------- *)

(* Replaying the totally ordered log is what makes every replica's
   state a pure function of the (agreed) log: commands bump the
   version; a snapshot merges key-wise with the snapshot's values
   winning. Because snapshots occupy the same totally ordered log,
   replicas coming from different partitions fold different prefixes
   but identical merge suffixes, and every key present in any snapshot
   converges — the snapshots carry each group's complete state, so
   nothing else survives a merge unmerged. *)
let fold_state entries =
  List.fold_left
    (fun (version, kv) (_, payload) ->
      match decode payload with
      | Set (k, v) | Write { key = k; value = v; _ } ->
          (version + 1, Smap.add k v kv)
      | Snapshot (ver, snap_kv) ->
          (max version ver, Smap.union (fun _ _mine theirs -> Some theirs) kv snap_kv)
      | Unknown -> (version, kv))
    (0, Smap.empty) entries

let state t = snd (fold_state (Tord_client.total_order t.tc))
let version t = fst (fold_state (Tord_client.total_order t.tc))
let get t key = Smap.find_opt key (state t)

(* -- Cursor over the ordered log (for the incremental KV store) ----------- *)

let log_length t = Tord_core.total_count t.tc.Tord_client.core

let ordered_from t k =
  List.map
    (fun (e : Tord_core.entry) -> e.Tord_core.payload)
    (Tord_core.entries_from t.tc.Tord_client.core k)

(* -- Scripting API --------------------------------------------------------- *)

let set (r : t ref) ~key ~value =
  let tc = ref !r.tc in
  Tord_client.push tc (encode_set ~key ~value);
  r := { !r with tc = !tc }

let write (r : t ref) ~client ~seq ~key ~value =
  let tc = ref !r.tc in
  Tord_client.push tc (encode_write ~client ~seq ~key ~value);
  r := { !r with tc = !tc }

(* -- Component -------------------------------------------------------------- *)

let outputs t = Tord_client.outputs t.tc

let accepts me = Tord_client.accepts me

(* Ship a snapshot when new members join this replica's group: with
   transitional sets, only the group minimum sends; blind, everybody
   does at every change. *)
let should_send_snapshot t view tset =
  let joined = not (Proc.Set.equal (View.set view) tset) in
  if t.transfer_blind then View.mem t.me view
  else joined && Proc.Set.min_elt_opt tset = Some t.me

(* Strict mode makes codec drift loud the moment an undecodable
   command becomes totally ordered; otherwise it is tolerated and
   counted. Newly ordered entries are exactly the log suffix past the
   pre-event count (a reborn core restarts the count at zero, so the
   clamped cursor read skips nothing real). *)
let check_unknowns t ~before =
  let entries = Tord_core.entries_from t.tc.Tord_client.core before in
  let fresh =
    List.fold_left
      (fun acc (e : Tord_core.entry) ->
        match decode e.Tord_core.payload with Unknown -> acc + 1 | _ -> acc)
      0 entries
  in
  if fresh = 0 then t
  else if t.strict then
    raise
      (Codec_drift
         (Fmt.str "replica %a: %d undecodable ordered command%s" Proc.pp t.me
            fresh
            (if fresh = 1 then "" else "s")))
  else { t with unknowns = t.unknowns + fresh }

let apply t (a : Action.t) =
  let before = Tord_core.total_count t.tc.Tord_client.core in
  let tc = Tord_client.apply t.tc a in
  let t = check_unknowns { t with tc } ~before in
  match a with
  | Action.App_view (_, view, tset) when not tc.Tord_client.crashed ->
      if should_send_snapshot t view tset then begin
        let snap = encode_snapshot ~version:(version t) (state t) in
        let tcr = ref t.tc in
        Tord_client.push tcr snap;
        { t with
          tc = !tcr;
          snapshot_bytes = t.snapshot_bytes + String.length snap;
          snapshots_sent = t.snapshots_sent + 1 }
      end
      else t
  | _ -> t

(* Client-role component (wraps Tord_client): co-located at me. *)
let footprint me (a : Action.t) =
  let open Vsgc_ioa.Footprint in
  match a with
  | Action.App_send (p, _) | Action.Block_ok p | Action.App_deliver (p, _, _)
  | Action.App_view (p, _, _) | Action.Block p | Action.Crash p | Action.Recover p
    when Proc.equal p me -> rw [ Proc_state me ]
  | _ -> empty

let emits me (a : Action.t) =
  match a with
  | Action.App_send (p, _) | Action.Block_ok p -> Proc.equal p me
  | _ -> false

let observe me (st : t) =
  [ (Vsgc_ioa.Footprint.Proc_state me, Vsgc_ioa.Component.digest st) ]

(* Under the executor strict mode defaults ON: a deployed replica that
   orders an undecodable command has a codec-drift bug worth a crash,
   not a skipped entry. *)
let def ?transfer_blind ?(strict = true) ?batch_orders me :
    t Vsgc_ioa.Component.def =
  {
    name = Fmt.str "replica_%a" Proc.pp me;
    init = initial ?transfer_blind ~strict ?batch_orders me;
    accepts = accepts me;
    outputs;
    apply;
    footprint = footprint me;
    emits = emits me;
    observe = observe me;
  }

let component ?transfer_blind ?strict ?batch_orders me =
  let d = def ?transfer_blind ?strict ?batch_orders me in
  let r = ref d.Vsgc_ioa.Component.init in
  (Vsgc_ioa.Component.pack_with_ref d r, r)
