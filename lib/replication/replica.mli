(** A replicated key-value state machine over totally ordered multicast
    — the application motif the paper gives for Virtual Synchrony
    (§4.1.2). Replicas that travel together stay byte-identical with no
    synchronization exchange; on merges, the minimum member of each
    transitional set multicasts one snapshot, folded into the same
    totally ordered log as the commands (so adoption is deterministic
    everywhere). The [transfer_blind] ablation models a system without
    transitional sets: every member ships its snapshot at every view
    change (bench E8). *)

open Vsgc_types
module Smap : Map.S with type key = string
module Tord_client = Vsgc_totalorder.Tord_client
module Tord_core = Vsgc_totalorder.Tord_core

exception Codec_drift of string
(** Raised in strict mode when an undecodable command reaches the
    totally ordered log. *)

type t = {
  tc : Tord_client.t;
  me : Proc.t;
  transfer_blind : bool;
  snapshot_bytes : int;  (** total snapshot payload bytes multicast *)
  snapshots_sent : int;
  strict : bool;  (** raise {!Codec_drift} on Unknown ordered commands *)
  unknowns : int;  (** Unknown commands tolerated (non-strict mode) *)
}

val initial :
  ?transfer_blind:bool -> ?strict:bool -> ?batch_orders:bool -> Proc.t -> t
(** [strict] defaults to [false] here (scripting contexts count codec
    drift in {!unknowns}); the component {!def} defaults it to [true].
    [batch_orders] selects the coalesced announcement path
    ({!Tord_client.t.batch_orders}). *)

val unknowns : t -> int

(** {1 Commands and snapshots} *)

val encode_set : key:string -> value:string -> string

val encode_write :
  client:int -> seq:int -> key:string -> value:string -> string
(** A KV-service write stamped with the originating command id
    [(client, seq)] — idempotent under retransmission, acks dedup by
    id (DESIGN.md §15). *)

val encode_snapshot : version:int -> string Smap.t -> string

type cmd =
  | Set of string * string
  | Write of { client : int; seq : int; key : string; value : string }
  | Snapshot of int * string Smap.t
  | Unknown

val decode : string -> cmd

(** {1 State (a pure fold of the totally ordered log)} *)

val fold_state : ('a * string) list -> int * string Smap.t
(** Fold decoded commands over an ordered (sender, payload) log — the
    pure function both replica arms' {!state} is defined by. *)

val state : t -> string Smap.t
val version : t -> int
val get : t -> string -> string option

(** {1 Cursor over the ordered log}

    The incremental KV store ({!Vsgc_kv.Kv_store}) consumes the log
    through these instead of refolding {!state} per request. *)

val log_length : t -> int
(** Totally ordered entries so far (O(1)). *)

val ordered_from : t -> int -> string list
(** Ordered command payloads from global position [k], oldest first;
    a beyond-the-log cursor (reborn core) reads as empty. *)

(** {1 Scripting} *)

val set : t ref -> key:string -> value:string -> unit

val write :
  t ref -> client:int -> seq:int -> key:string -> value:string -> unit

(** {1 Component} *)

val outputs : t -> Action.t list
val accepts : Proc.t -> Action.t -> bool

val apply : t -> Action.t -> t
(** @raise Codec_drift in strict mode on an Unknown ordered command. *)

val def :
  ?transfer_blind:bool ->
  ?strict:bool ->
  ?batch_orders:bool ->
  Proc.t ->
  t Vsgc_ioa.Component.def
(** [strict] defaults to [true] under the executor. *)

val component :
  ?transfer_blind:bool ->
  ?strict:bool ->
  ?batch_orders:bool ->
  Proc.t ->
  Vsgc_ioa.Component.packed * t ref
