#!/bin/sh
# Tier-1 gate: build, full test suite, then a depth-bounded explorer
# smoke (well under 30 s): the seeded no-sync-wait mutation must be
# found within the depth bound, shrunk, saved, and reproduced
# deterministically from the saved file.
set -e
cd "$(dirname "$0")/.."

dune build
dune runtest

tmp=$(mktemp /tmp/vsgc-smoke-XXXXXX.sched)
trap 'rm -f "$tmp"' EXIT
dune exec -- devtools/explore.exe find -mutation no_sync_wait -depth 4 -max-runs 2000 -o "$tmp" -quiet
dune exec -- devtools/explore.exe replay "$tmp" -quiet

# Static vet: every shipped composition must lint clean, the
# inheritance tower must hold, and every saved schedule must match its
# layer's signature...
dune exec -- devtools/vet.exe all
# ...and the found schedule above must validate too.
schdir=$(mktemp -d /tmp/vsgc-vet-XXXXXX)
trap 'rm -rf "$tmp" "$schdir"' EXIT
cp "$tmp" "$schdir/found.sched"
dune exec -- devtools/vet.exe corpus "$schdir"

# The linter must stay able to see: each seeded miswiring fixture must
# make vet exit non-zero (a clean fixture means the check went blind).
for f in $(dune exec -- devtools/vet.exe fixture -list); do
  if dune exec -- devtools/vet.exe fixture "$f" > /dev/null 2>&1; then
    echo "ci: FAIL: vet fixture $f reported no diagnostic" >&2
    exit 1
  fi
done

# Socket smoke: the wire runtime end to end. Two membership servers
# and two clients as real OS processes on 127.0.0.1; client 0
# multicasts 5 payloads; both clients must print the same delivery
# sequence in the same view. (Single sender: RFIFO orders per sender,
# so cross-sender interleaving is not part of the contract.) Every
# process carries its own hard timeout, so a wedged run fails rather
# than hangs.
dune build bin/vsgc_node.exe
smokedir=$(mktemp -d /tmp/vsgc-socket-XXXXXX)
trap 'rm -rf "$tmp" "$schdir" "$smokedir"' EXIT
node=_build/default/bin/vsgc_node.exe
port=$((20000 + $$ % 20000))
"$node" server --id 0 --listen 127.0.0.1:$port --timeout 25 \
  > "$smokedir/s0.log" 2>&1 &
s0=$!
"$node" server --id 1 --listen 127.0.0.1:$((port+1)) \
  --peer s0=127.0.0.1:$port --timeout 25 > "$smokedir/s1.log" 2>&1 &
s1=$!
"$node" client --id 0 --attach 0 --listen 127.0.0.1:$((port+10)) \
  --peer s0=127.0.0.1:$port \
  --members 2 --send 5 --expect 5 --linger 2 --timeout 20 > "$smokedir/c0.log" 2>&1 &
c0=$!
"$node" client --id 1 --attach 1 --listen 127.0.0.1:$((port+11)) \
  --peer s1=127.0.0.1:$((port+1)) --peer p0=127.0.0.1:$((port+10)) \
  --members 2 --expect 5 --timeout 20 > "$smokedir/c1.log" 2>&1 &
c1=$!
smoke_fail() {
  echo "ci: FAIL: socket smoke: $1" >&2
  for f in "$smokedir"/*.log; do echo "--- $f"; cat "$f"; done >&2
  kill "$s0" "$s1" "$c0" "$c1" 2>/dev/null || true
  exit 1
}
wait "$c0" || smoke_fail "client 0 exited non-zero"
wait "$c1" || smoke_fail "client 1 exited non-zero"
kill "$s0" "$s1" 2>/dev/null || true
# DELIVER lines carry the view id, so equality here is exactly "same
# delivery sequence in the same view". (VIEW prefixes can differ by
# join timing, so they are checked for the common view, not diffed.)
for c in c0 c1; do
  grep '^DELIVER ' "$smokedir/$c.log" > "$smokedir/$c.events"
  grep -q '^VIEW .*members={p0,p1}' "$smokedir/$c.log" \
    || smoke_fail "$c never saw the full view"
done
diff -u "$smokedir/c0.events" "$smokedir/c1.events" \
  || smoke_fail "clients disagree on delivery order or view"
test "$(grep -c '^DELIVER ' "$smokedir/c0.events")" = 5 \
  || smoke_fail "expected 5 deliveries"

echo "ci: OK"
