#!/bin/sh
# Tier-1 gate: build, full test suite, then a depth-bounded explorer
# smoke (well under 30 s): the seeded no-sync-wait mutation must be
# found within the depth bound, shrunk, saved, and reproduced
# deterministically from the saved file.
set -e
cd "$(dirname "$0")/.."

dune build
dune runtest

tmp=$(mktemp /tmp/vsgc-smoke-XXXXXX.sched)
trap 'rm -f "$tmp"' EXIT
dune exec -- devtools/explore.exe find -mutation no_sync_wait -depth 4 -max-runs 2000 -o "$tmp" -quiet
dune exec -- devtools/explore.exe replay "$tmp" -quiet

echo "ci: OK"
