#!/bin/sh
# Tier-1 gate: build, full test suite, then a depth-bounded explorer
# smoke (well under 30 s): the seeded no-sync-wait mutation must be
# found within the depth bound, shrunk, saved, and reproduced
# deterministically from the saved file.
set -e
cd "$(dirname "$0")/.."

dune build
dune runtest

tmp=$(mktemp /tmp/vsgc-smoke-XXXXXX.sched)
trap 'rm -f "$tmp"' EXIT
dune exec -- devtools/explore.exe find -mutation no_sync_wait -depth 4 -max-runs 2000 -o "$tmp" -quiet
dune exec -- devtools/explore.exe replay "$tmp" -quiet

# Static vet: every shipped composition must lint clean, the
# inheritance tower must hold, and every saved schedule must match its
# layer's signature...
dune exec -- devtools/vet.exe all
# ...and the found schedule above must validate too.
schdir=$(mktemp -d /tmp/vsgc-vet-XXXXXX)
trap 'rm -rf "$tmp" "$schdir"' EXIT
cp "$tmp" "$schdir/found.sched"
dune exec -- devtools/vet.exe corpus "$schdir"

# The linter must stay able to see: each seeded miswiring fixture must
# make vet exit non-zero (a clean fixture means the check went blind).
for f in $(dune exec -- devtools/vet.exe fixture -list); do
  if dune exec -- devtools/vet.exe fixture "$f" > /dev/null 2>&1; then
    echo "ci: FAIL: vet fixture $f reported no diagnostic" >&2
    exit 1
  fi
done

echo "ci: OK"
