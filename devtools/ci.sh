#!/bin/sh
# Tier-1 gate: build, full test suite, a depth-bounded explorer smoke
# (the seeded no-sync-wait mutation must be found, shrunk, saved, and
# reproduced deterministically from the saved file), static vet, the
# fault corpus replayed against pinned fingerprints, a seeded chaos
# sweep (crash faults and state corruption), the KV service SLO gate
# (chaos kv-slo, both stable-delivery modes), and four socket smokes —
# plain agreement, SIGKILL-and-rejoin, the replicated KV service under
# a mid-load server kill, and the symmetric Skeen arm under the same
# kill-and-rejoin script. Everything carries a hard timeout.
#
#   ci.sh [-smoke]   the fast gate above (default)
#   ci.sh -soak      the gate plus the §13 soak: the full schedule +
#                    fault corpus (corruption included) and >= 1M
#                    corruption-enabled chaos steps, each under both
#                    VSGC_SCHED=cached and VSGC_SCHED=rescan
set -e
cd "$(dirname "$0")/.."

soak=0
case "${1:-}" in
  ""|-smoke) ;;
  -soak) soak=1 ;;
  *) echo "usage: ci.sh [-smoke|-soak]" >&2; exit 2 ;;
esac

dune build
dune runtest

tmp=$(mktemp /tmp/vsgc-smoke-XXXXXX.sched)
trap 'rm -f "$tmp"' EXIT
dune exec -- devtools/explore.exe find -mutation no_sync_wait -depth 4 -max-runs 2000 -o "$tmp" -quiet
dune exec -- devtools/explore.exe replay "$tmp" -quiet

# Static vet: every shipped composition must lint clean, the
# inheritance tower must hold, the effect audit (vet effects: coarse
# fallbacks, emit/footprint cross-checks, write-set totality) must
# come back empty, and every saved schedule must match its layer's
# signature...
dune exec -- devtools/vet.exe all
# ...and the found schedule above must validate too.
schdir=$(mktemp -d /tmp/vsgc-vet-XXXXXX)
trap 'rm -rf "$tmp" "$schdir"' EXIT
cp "$tmp" "$schdir/found.sched"
dune exec -- devtools/vet.exe corpus "$schdir"

# The linter must stay able to see: each seeded miswiring fixture must
# make vet exit non-zero (a clean fixture means the check went blind).
for f in $(dune exec -- devtools/vet.exe fixture -list); do
  if dune exec -- devtools/vet.exe fixture "$f" > /dev/null 2>&1; then
    echo "ci: FAIL: vet fixture $f reported no diagnostic" >&2
    exit 1
  fi
done

# Socket smoke: the wire runtime end to end. Two membership servers
# and two clients as real OS processes on 127.0.0.1; client 0
# multicasts 5 payloads; both clients must print the same delivery
# sequence in the same view. (Single sender: RFIFO orders per sender,
# so cross-sender interleaving is not part of the contract.) Every
# process carries its own hard timeout, so a wedged run fails rather
# than hangs.
dune build bin/vsgc_node.exe
smokedir=$(mktemp -d /tmp/vsgc-socket-XXXXXX)
trap 'rm -rf "$tmp" "$schdir" "$smokedir"' EXIT
node=_build/default/bin/vsgc_node.exe
port=$((20000 + $$ % 20000))
"$node" server --id 0 --listen 127.0.0.1:$port --timeout 25 \
  > "$smokedir/s0.log" 2>&1 &
s0=$!
"$node" server --id 1 --listen 127.0.0.1:$((port+1)) \
  --peer s0=127.0.0.1:$port --timeout 25 > "$smokedir/s1.log" 2>&1 &
s1=$!
"$node" client --id 0 --attach 0 --listen 127.0.0.1:$((port+10)) \
  --peer s0=127.0.0.1:$port \
  --members 2 --send 5 --expect 5 --linger 2 --timeout 20 > "$smokedir/c0.log" 2>&1 &
c0=$!
"$node" client --id 1 --attach 1 --listen 127.0.0.1:$((port+11)) \
  --peer s1=127.0.0.1:$((port+1)) --peer p0=127.0.0.1:$((port+10)) \
  --members 2 --expect 5 --timeout 20 > "$smokedir/c1.log" 2>&1 &
c1=$!
smoke_fail() {
  echo "ci: FAIL: socket smoke: $1" >&2
  for f in "$smokedir"/*.log; do echo "--- $f"; cat "$f"; done >&2
  kill "$s0" "$s1" "$c0" "$c1" 2>/dev/null || true
  exit 1
}
wait "$c0" || smoke_fail "client 0 exited non-zero"
wait "$c1" || smoke_fail "client 1 exited non-zero"
kill "$s0" "$s1" 2>/dev/null || true
# DELIVER lines carry the view id, so equality here is exactly "same
# delivery sequence in the same view". (VIEW prefixes can differ by
# join timing, so they are checked for the common view, not diffed.)
for c in c0 c1; do
  grep '^DELIVER ' "$smokedir/$c.log" > "$smokedir/$c.events"
  grep -q '^VIEW .*members={p0,p1}' "$smokedir/$c.log" \
    || smoke_fail "$c never saw the full view"
done
diff -u "$smokedir/c0.events" "$smokedir/c1.events" \
  || smoke_fail "clients disagree on delivery order or view"
test "$(grep -c '^DELIVER ' "$smokedir/c0.events")" = 5 \
  || smoke_fail "expected 5 deliveries"

# Fault-schedule regression corpus: every checked-in .fault schedule
# must replay to its expect header AND its pinned fingerprint (the
# runtest corpus suite covers the library path; this exercises the
# chaos.exe CLI the schedules were pinned with).
dune exec -- devtools/chaos.exe replay -quiet test/corpus/*.fault

# Scheduler-cache fingerprint gate: the incremental scheduler must be
# byte-identical to the pre-cache rescan implementation. Replay the
# whole corpus — the pinned .fault fingerprints and every .sched
# expectation — under VSGC_SCHED=rescan; any divergence between the
# cached replays above and these fails here.
VSGC_SCHED=rescan dune exec -- devtools/chaos.exe replay -quiet test/corpus/*.fault
for s in test/corpus/*.sched; do
  VSGC_SCHED=rescan dune exec -- devtools/explore.exe replay "$s" -quiet
done

# Multicore fingerprint gate (DESIGN.md §17): the deterministic-merge
# parallel scheduler fans the per-step candidate refresh across a
# 4-domain pool but must stay bit-identical to rescan — the whole
# pinned corpus replays under VSGC_SCHED=parallel -jobs 4 and any
# fingerprint or expectation drift fails here.
VSGC_SCHED=parallel dune exec -- devtools/chaos.exe replay -jobs 4 -quiet \
  test/corpus/*.fault
for s in test/corpus/*.sched; do
  VSGC_SCHED=parallel dune exec -- devtools/explore.exe replay "$s" -jobs 4 -quiet
done

# Sanitized replay gate: the effect sanitizer shadow-checks every step
# of the whole pinned corpus, under both scheduler modes.
# VSGC_SANITIZE=1 raises on the first footprint lie (surfaced as a
# "sanitize" verdict, so the replay exits non-zero), and the pinned
# fingerprints double as proof the sanitizer consumed no randomness
# and left no state behind.
for mode in cached rescan; do
  VSGC_SANITIZE=1 VSGC_SCHED=$mode dune exec -- devtools/chaos.exe replay \
    -quiet test/corpus/*.fault
  for s in test/corpus/*.sched; do
    VSGC_SANITIZE=1 VSGC_SCHED=$mode dune exec -- devtools/explore.exe \
      replay "$s" -quiet
  done
done

# Perf-gate smoke: E13 (cached-vs-rescan scheduling; the run itself
# asserts both modes take the identical step count), E14 (the
# zero-copy codec path; asserts legacy and pooled encodes agree
# byte-for-byte), E16 (sanitizer overhead; asserts a sanitized run
# is step- and fingerprint-identical to an unsanitized one), E17
# (the KV service; asserts batched and unbatched stable delivery
# produce byte-identical stores with strictly fewer apply rounds, and
# zero lost acks under the partition-heal script), and E18 (the
# total-order bake-off; asserts both arms ack every command under
# every fault mode, the Skeen monitor and GCS invariant battery stay
# green, and the two arms' final stores are byte-identical), and E19
# (the multicore executor; asserts the deterministic parallel merge
# is step- and fingerprint-identical to the sequential rescan, the
# racy merged trace is jobs-independent, and the synthetic k-group
# arm loses no steps) at reduced iterations, JSON output suppressed.
dune exec -- bench/main.exe -smoke E13 E14 E16 E17 E18 E19 > /dev/null

# KV SLO gate: the open-loop load generator across scripted
# partition-heal and crash-rejoin reconfigurations on the loopback
# deployment (chaos kv-slo, DESIGN.md §15). Green means every
# acknowledged write is in its home replica's stable store, all live
# stores are byte-identical, and the max client-visible stall stayed
# within budget — in both stable-delivery modes.
dune exec -- devtools/chaos.exe kv-slo
dune exec -- devtools/chaos.exe kv-slo -batch

# Chaos smoke: a short seeded sweep of sampled fault schedules must
# come back green (exit 1 = nothing found; 0 = a violation was found
# and shrunk; anything else is a driver error).
chaos_status=0
dune exec -- devtools/chaos.exe find -rounds 5 -seed 2026 -quiet \
  || chaos_status=$?
if [ "$chaos_status" != 1 ]; then
  echo "ci: FAIL: chaos find exited $chaos_status (want 1 = green)" >&2
  exit 1
fi
# ...and with state corruption sampled in (DESIGN.md §13): green means
# every injected corruption was detected by the local guards and
# healed through the rejoin, so exit 1 is still the only pass.
chaos_status=0
dune exec -- devtools/chaos.exe find -corrupt -rounds 5 -seed 2027 -quiet \
  || chaos_status=$?
if [ "$chaos_status" != 1 ]; then
  echo "ci: FAIL: chaos find -corrupt exited $chaos_status (want 1 = green)" >&2
  exit 1
fi
# ...and one sanitized sample: a short sweep with the effect sanitizer
# raising on any footprint lie. Green (exit 1) means the shadow-state
# diffs and race replays stayed silent under live fault injection.
chaos_status=0
VSGC_SANITIZE=1 dune exec -- devtools/chaos.exe find -rounds 2 -seed 2028 \
  -quiet || chaos_status=$?
if [ "$chaos_status" != 1 ]; then
  echo "ci: FAIL: sanitized chaos find exited $chaos_status (want 1 = green)" >&2
  exit 1
fi

# Kill-and-restart smoke: the §8 story over real sockets. Two servers
# and two clients; client 1 is SIGKILLed mid-run, the survivor must
# install the singleton view, then a new incarnation of client 1
# rejoins under the same identity — both must land in the full view
# again and the survivor must deliver the reborn client's traffic.
# Bounded poll loops plus per-process hard timeouts keep a wedged run
# failing fast instead of hanging.
killdir=$(mktemp -d /tmp/vsgc-kill-XXXXXX)
trap 'rm -rf "$tmp" "$schdir" "$smokedir" "$killdir"' EXIT
kport=$((port + 100))
kill_fail() {
  echo "ci: FAIL: kill-and-restart smoke: $1" >&2
  for f in "$killdir"/*.log; do echo "--- $f"; cat "$f"; done >&2
  kill -9 "$ks0" "$ks1" "$kc0" "$kc1" 2>/dev/null || true
  exit 1
}
wait_for() { # FILE PATTERN TENTH_SECS WHAT
  i=0
  until grep -q "$2" "$1" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge "$3" ] && kill_fail "timed out waiting for $4"
    sleep 0.1
  done
}
"$node" server --id 0 --listen 127.0.0.1:$kport --timeout 40 \
  > "$killdir/s0.log" 2>&1 &
ks0=$!
"$node" server --id 1 --listen 127.0.0.1:$((kport+1)) \
  --peer s0=127.0.0.1:$kport --timeout 40 > "$killdir/s1.log" 2>&1 &
ks1=$!
"$node" client --id 0 --attach 0 --listen 127.0.0.1:$((kport+10)) \
  --peer s0=127.0.0.1:$kport \
  --members 2 --expect 2 --linger 2 --timeout 35 > "$killdir/c0.log" 2>&1 &
kc0=$!
"$node" client --id 1 --attach 1 --listen 127.0.0.1:$((kport+11)) \
  --peer s1=127.0.0.1:$((kport+1)) --peer p0=127.0.0.1:$((kport+10)) \
  --members 2 --expect 999 --timeout 30 > "$killdir/c1.log" 2>&1 &
kc1=$!
wait_for "$killdir/c0.log" '^VIEW .*members={p0,p1}' 200 "the full view"
kill -9 "$kc1" 2>/dev/null || true
wait_for "$killdir/c0.log" '^VIEW .*members={p0}$' 200 \
  "the survivor's singleton view"
"$node" client --id 1 --attach 1 --listen 127.0.0.1:$((kport+12)) \
  --peer s1=127.0.0.1:$((kport+1)) --peer p0=127.0.0.1:$((kport+10)) \
  --members 2 --send 2 --expect 2 --linger 2 --timeout 25 \
  > "$killdir/c1b.log" 2>&1 &
kc1=$!
wait "$kc0" || kill_fail "surviving client exited non-zero"
wait "$kc1" || kill_fail "reborn client exited non-zero"
kill "$ks0" "$ks1" 2>/dev/null || true
grep -q '^VIEW .*members={p0,p1}' "$killdir/c1b.log" \
  || kill_fail "reborn client never rejoined the full view"
grep '^VIEW ' "$killdir/c0.log" | tail -1 | grep -q 'members={p0,p1}' \
  || kill_fail "survivor's last view is not the rejoined pair"
test "$(grep -c '^DELIVER .*from=p1' "$killdir/c0.log")" = 2 \
  || kill_fail "survivor missed the reborn client's deliveries"

# KV socket smoke: the replicated KV service over real sockets
# (DESIGN.md §15). One membership server, two kv-servers, one
# open-loop load client writing to p0 with retransmission on. p1 is
# SIGKILLed mid-load and a new incarnation rejoins under the same
# identity; the load must finish with zero lost acknowledged writes
# (exit 0) and both kv-servers must settle on the identical store
# digest — the reborn one refolded through the snapshot transfer.
kvdir=$(mktemp -d /tmp/vsgc-kv-XXXXXX)
trap 'rm -rf "$tmp" "$schdir" "$smokedir" "$killdir" "$kvdir"' EXIT
vport=$((port + 200))
kv_fail() {
  echo "ci: FAIL: kv socket smoke: $1" >&2
  for f in "$kvdir"/*.log; do echo "--- $f"; cat "$f"; done >&2
  kill -9 "$vs0" "$vp0" "$vp1" "$vk0" 2>/dev/null || true
  exit 1
}
kv_wait() { # FILE PATTERN TENTH_SECS WHAT [MIN_COUNT]
  i=0
  until [ "$(grep -c "$2" "$1" 2>/dev/null || true)" -ge "${5:-1}" ]; do
    i=$((i + 1))
    [ "$i" -ge "$3" ] && kv_fail "timed out waiting for $4"
    sleep 0.1
  done
}
"$node" server --id 0 --listen 127.0.0.1:$vport --timeout 45 \
  > "$kvdir/s0.log" 2>&1 &
vs0=$!
"$node" kv-server --id 0 --listen 127.0.0.1:$((vport+1)) \
  --peer s0=127.0.0.1:$vport --timeout 40 > "$kvdir/p0.log" 2>&1 &
vp0=$!
"$node" kv-server --id 1 --listen 127.0.0.1:$((vport+2)) \
  --peer s0=127.0.0.1:$vport --peer p0=127.0.0.1:$((vport+1)) \
  --timeout 40 > "$kvdir/p1.log" 2>&1 &
vp1=$!
kv_wait "$kvdir/p0.log" '^VIEW .*members={p0,p1}' 200 "the full kv view"
"$node" kv-load --id 0 --peer p0=127.0.0.1:$((vport+1)) \
  --rate 100 --count 300 --retransmit 0.5 --timeout 30 \
  > "$kvdir/k0.log" 2>&1 &
vk0=$!
kv_wait "$kvdir/p1.log" '^STORE .*applied=[1-9]' 150 "replicated writes at p1"
kill -9 "$vp1" 2>/dev/null || true
kv_wait "$kvdir/p0.log" '^VIEW .*members={p0}$' 200 \
  "the survivor's singleton view"
"$node" kv-server --id 1 --listen 127.0.0.1:$((vport+3)) \
  --peer s0=127.0.0.1:$vport --peer p0=127.0.0.1:$((vport+1)) \
  --timeout 35 > "$kvdir/p1b.log" 2>&1 &
vp1=$!
kv_wait "$kvdir/p0.log" '^VIEW .*members={p0,p1}' 250 \
  "the reborn kv-server's rejoin" 2
wait "$vk0" || kv_fail "load client exited non-zero (lost acks or timeout)"
grep -q '^KVLOAD .*lost=0 ' "$kvdir/k0.log" \
  || kv_fail "load client reported lost acknowledged writes"
# Both kv-servers must settle on the same final store digest: poll the
# newest STORE line of each until they agree.
i=0
while :; do
  d0=$(grep '^STORE ' "$kvdir/p0.log" | tail -1 | sed 's/.*digest=\([^ ]*\).*/\1/')
  d1=$(grep '^STORE ' "$kvdir/p1b.log" | tail -1 | sed 's/.*digest=\([^ ]*\).*/\1/')
  [ -n "$d0" ] && [ "$d0" = "$d1" ] && break
  i=$((i + 1))
  [ "$i" -ge 150 ] && kv_fail "store digests never converged ($d0 vs $d1)"
  sleep 0.1
done
kill "$vs0" "$vp0" "$vp1" 2>/dev/null || true

# Symmetric-arm socket smoke: the Skeen-style total order over real
# sockets (DESIGN.md §16). Same shape as the KV smoke — one membership
# server, two sym-servers, one open-loop load client — but every write
# is ordered by the symmetric (ts, sender) protocol instead of the
# sequencer, and the Skeen delivery-condition monitor rides inside
# each node. p1 is SIGKILLed mid-load and a new incarnation rejoins;
# the load must finish with zero lost acknowledged writes and both
# sym-servers must settle on the identical store digest.
symdir=$(mktemp -d /tmp/vsgc-sym-XXXXXX)
trap 'rm -rf "$tmp" "$schdir" "$smokedir" "$killdir" "$kvdir" "$symdir"' EXIT
yport=$((port + 300))
sym_fail() {
  echo "ci: FAIL: sym socket smoke: $1" >&2
  for f in "$symdir"/*.log; do echo "--- $f"; cat "$f"; done >&2
  kill -9 "$ys0" "$yp0" "$yp1" "$yk0" 2>/dev/null || true
  exit 1
}
sym_wait() { # FILE PATTERN TENTH_SECS WHAT [MIN_COUNT]
  i=0
  until [ "$(grep -c "$2" "$1" 2>/dev/null || true)" -ge "${5:-1}" ]; do
    i=$((i + 1))
    [ "$i" -ge "$3" ] && sym_fail "timed out waiting for $4"
    sleep 0.1
  done
}
"$node" server --id 0 --listen 127.0.0.1:$yport --timeout 45 \
  > "$symdir/s0.log" 2>&1 &
ys0=$!
"$node" sym-server --id 0 --listen 127.0.0.1:$((yport+1)) \
  --peer s0=127.0.0.1:$yport --timeout 40 > "$symdir/p0.log" 2>&1 &
yp0=$!
"$node" sym-server --id 1 --listen 127.0.0.1:$((yport+2)) \
  --peer s0=127.0.0.1:$yport --peer p0=127.0.0.1:$((yport+1)) \
  --timeout 40 > "$symdir/p1.log" 2>&1 &
yp1=$!
sym_wait "$symdir/p0.log" '^VIEW .*members={p0,p1}' 200 "the full sym view"
"$node" sym-load --id 0 --peer p0=127.0.0.1:$((yport+1)) \
  --rate 100 --count 300 --retransmit 0.5 --timeout 30 \
  > "$symdir/k0.log" 2>&1 &
yk0=$!
sym_wait "$symdir/p1.log" '^STORE .*applied=[1-9]' 150 \
  "symmetric-arm replicated writes at p1"
kill -9 "$yp1" 2>/dev/null || true
sym_wait "$symdir/p0.log" '^VIEW .*members={p0}$' 200 \
  "the survivor's singleton view"
"$node" sym-server --id 1 --listen 127.0.0.1:$((yport+3)) \
  --peer s0=127.0.0.1:$yport --peer p0=127.0.0.1:$((yport+1)) \
  --timeout 35 > "$symdir/p1b.log" 2>&1 &
yp1=$!
sym_wait "$symdir/p0.log" '^VIEW .*members={p0,p1}' 250 \
  "the reborn sym-server's rejoin" 2
wait "$yk0" || sym_fail "load client exited non-zero (lost acks or timeout)"
grep -q '^KVLOAD .*lost=0 ' "$symdir/k0.log" \
  || sym_fail "load client reported lost acknowledged writes"
# Per-arm digest equality: both sym-servers must settle on the same
# final store digest, the reborn one refolded through the transfer.
i=0
while :; do
  d0=$(grep '^STORE ' "$symdir/p0.log" | tail -1 | sed 's/.*digest=\([^ ]*\).*/\1/')
  d1=$(grep '^STORE ' "$symdir/p1b.log" | tail -1 | sed 's/.*digest=\([^ ]*\).*/\1/')
  [ -n "$d0" ] && [ "$d0" = "$d1" ] && break
  i=$((i + 1))
  [ "$i" -ge 150 ] && sym_fail "sym store digests never converged ($d0 vs $d1)"
  sleep 0.1
done
kill "$ys0" "$yp0" "$yp1" 2>/dev/null || true

# Soak (-soak only): the whole corpus and >= 1M corruption-enabled
# chaos steps, under all three deterministic scheduler modes
# (parallel = the 4-domain deterministic merge). Any violation,
# fingerprint drift, or undetected corruption fails; the soak
# summary's detection stats feed EXPERIMENTS.md E15.
if [ "$soak" = 1 ]; then
  for mode in cached rescan parallel; do
    jobs_flag=""
    [ "$mode" = parallel ] && jobs_flag="-jobs 4"
    echo "ci: soak [$mode]: corpus replay"
    VSGC_SCHED=$mode dune exec -- devtools/chaos.exe replay $jobs_flag -quiet \
      test/corpus/*.fault
    for s in test/corpus/*.sched; do
      VSGC_SCHED=$mode dune exec -- devtools/explore.exe replay "$s" $jobs_flag -quiet
    done
    echo "ci: soak [$mode]: chaos soak"
    VSGC_SCHED=$mode dune exec -- devtools/chaos.exe soak $jobs_flag \
      -steps 1000000 -seed 2026 -quiet
  done
fi

echo "ci: OK"
