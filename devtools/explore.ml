(* Schedule-explorer CLI.

     explore find   [opts]          bounded DFS for a violation; shrink + save
     explore replay FILE.sched      deterministically re-execute a saved schedule
     explore shrink FILE.sched      ddmin-minimize a saved violating schedule

   The default driving prefix for [find] scripts one reconfiguration to
   the full member set, lets it settle, injects application traffic,
   then queues (but does not run) a second membership change — leaving
   the view-change protocol's interleavings to the DFS. *)

open Vsgc_types
module E = Vsgc_explore

let die fmt = Fmt.kstr (fun s -> Fmt.epr "explore: %s@." s; exit 2) fmt

(* -- Options ------------------------------------------------------------- *)

let n = ref 2
let seed = ref 42
let layer = ref (`Full : Vsgc_core.Endpoint.layer)
let mutation = ref (None : Vsgc_core.Vs_rfifo_ts.mutation option)
let depth = ref 4
let max_runs = ref 10_000
let probe = ref true
let shrink = ref true
let sender = ref 1
let sends = ref 1
let out = ref ""
let name = ref ""
let quiet = ref false
let jobs = ref 1

let common =
  [
    ("-quiet", Arg.Set quiet, " only print the outcome line");
  ]

let find_opts =
  [
    ("-n", Arg.Set_int n, "N processes 0..N-1 (default 2)");
    ("-seed", Arg.Set_int seed, "S scheduler seed (default 42)");
    ( "-layer",
      Arg.String (fun s -> layer := E.Sysconf.layer_of_string s),
      "L wv|vs|full (default full)" );
    ( "-mutation",
      Arg.String (fun s -> mutation := E.Sysconf.mutation_of_string s),
      "M none|no_sync_wait (default none)" );
    ("-depth", Arg.Set_int depth, "D DFS depth bound (default 4)");
    ("-max-runs", Arg.Set_int max_runs, "R replay budget (default 10000)");
    ("-no-probe", Arg.Clear probe, " do not settle leaves to completion");
    ("-no-shrink", Arg.Clear shrink, " save the raw finding unshrunk");
    ("-sender", Arg.Set_int sender, "P process sending traffic (default 1)");
    ("-sends", Arg.Set_int sends, "K messages from the sender (default 1)");
    ("-o", Arg.Set_string out, "FILE save the (shrunk) finding here");
    ("-name", Arg.Set_string name, "NAME schedule name header");
    ( "-jobs",
      Arg.Set_int jobs,
      "J fan root subtrees across J domains (default 1)" );
  ]
  @ common

let default_prefix all =
  [
    E.Schedule.Env (E.Schedule.Reconfigure { origin = 0; set = all });
    E.Schedule.Settle;
  ]
  @ List.init !sends (fun i ->
        E.Schedule.Env
          (E.Schedule.Send { from = !sender; payload = Fmt.str "m%d" (i + 1) }))
  @ [
      E.Schedule.Env (E.Schedule.Start_change all);
      E.Schedule.Env (E.Schedule.Deliver_view { origin = 1; set = all });
    ]

let cmd_find args =
  Arg.parse_argv ~current:(ref 0)
    (Array.of_list (Sys.argv.(0) :: args))
    (Arg.align find_opts)
    (fun a -> die "find takes no positional argument (got %S)" a)
    "explore find [options]";
  if !sender < 0 || !sender >= !n then die "-sender out of range for -n %d" !n;
  let conf = E.Sysconf.make ~seed:!seed ~layer:!layer ?mutation:!mutation ~n:!n () in
  let all = Proc.Set.of_range 0 (!n - 1) in
  let sched_name = if !name <> "" then !name else Fmt.str "find-%a" E.Sysconf.pp conf in
  let sched =
    { E.Schedule.name = sched_name; expect = None; conf; entries = default_prefix all }
  in
  let t0 = Unix.gettimeofday () in
  let report =
    E.Explorer.explore ~depth:!depth ~max_runs:!max_runs ~probe:!probe
      ~jobs:!jobs sched
  in
  let dt = Unix.gettimeofday () -. t0 in
  if not !quiet then
    Fmt.pr "%a (%.2fs)@." E.Explorer.pp_report report dt;
  match report.E.Explorer.outcome with
  | E.Explorer.Found (found, v) ->
      Fmt.pr "violation: %a@." E.Replay.pp_violation v;
      let final = if !shrink then E.Shrink.minimize found else found in
      if not !quiet then
        Fmt.pr "schedule: %d entries (%d before shrinking)@."
          (List.length final.E.Schedule.entries)
          (List.length found.E.Schedule.entries);
      if !out <> "" then begin
        E.Schedule.save final !out;
        Fmt.pr "saved: %s@." !out
      end
      else if not !quiet then Fmt.pr "%a@." E.Schedule.pp final;
      exit 0
  | E.Explorer.Exhausted ->
      Fmt.pr "no violation (tree exhausted)@.";
      exit 1
  | E.Explorer.Run_budget ->
      Fmt.pr "no violation (run budget spent)@.";
      exit 1

let cmd_replay args =
  let rec strip acc = function
    | [] -> List.rev acc
    | "-quiet" :: rest ->
        quiet := true;
        strip acc rest
    (* -jobs on replay sets the executor pool width: with
       VSGC_SCHED=parallel the deterministic-merge refresh fans out
       while the replayed fingerprint must not move *)
    | "-jobs" :: j :: rest -> (
        match int_of_string_opt j with
        | Some j when j >= 1 ->
            Vsgc_ioa.Executor.set_default_jobs j;
            strip acc rest
        | _ -> die "-jobs wants a positive integer, got %S" j)
    | f :: rest -> strip (f :: acc) rest
  in
  let files = strip [] args in
  if files = [] then die "replay needs at least one FILE.sched";
  let bad = ref 0 in
  List.iter
    (fun file ->
      let sched = E.Schedule.load file in
      (match E.Replay.check sched with
      | E.Replay.Reproduced ->
          Fmt.pr "%s: reproduced %s@." file (Option.get sched.E.Schedule.expect)
      | E.Replay.Clean_ok -> Fmt.pr "%s: clean, as expected@." file
      | E.Replay.Missing kind ->
          incr bad;
          Fmt.pr "%s: FAILED to reproduce expected %s@." file kind
      | E.Replay.Unexpected v ->
          incr bad;
          Fmt.pr "%s: UNEXPECTED %a@." file E.Replay.pp_violation v);
      if not !quiet then Fmt.pr "%a@." E.Schedule.pp sched)
    files;
  exit (if !bad = 0 then 0 else 1)

let cmd_shrink args =
  match List.filter (fun a -> not (String.length a > 0 && a.[0] = '-')) args with
  | [ file ] | [ file; _ ] as pos ->
      let out = match pos with [ _; o ] -> o | _ -> file in
      let sched = E.Schedule.load file in
      let before = List.length sched.E.Schedule.entries in
      let small = E.Shrink.minimize sched in
      E.Schedule.save small out;
      Fmt.pr "%s: %d -> %d entries, saved to %s@." file before
        (List.length small.E.Schedule.entries)
        out;
      exit 0
  | _ -> die "usage: explore shrink FILE.sched [OUT.sched]"

let usage () =
  Fmt.epr
    "usage:@.  explore find [options]    (try: explore find -mutation \
     no_sync_wait)@.  explore replay FILE.sched...@.  explore shrink FILE.sched \
     [OUT.sched]@.";
  exit 2

let () =
  try
    match Array.to_list Sys.argv with
    | _ :: "find" :: args -> cmd_find args
    | _ :: "replay" :: args -> cmd_replay args
    | _ :: "shrink" :: args -> cmd_shrink args
    | _ -> usage ()
  with
  | E.Schedule.Parse_error msg -> die "parse error: %s" msg
  | Sys_error msg -> die "%s" msg
  | Invalid_argument msg -> die "%s" msg
