(* Static-analysis driver for the composed automata.

     vet wiring             lint every shipped composition (3 Sysconf
                            layers + the client-server stack)
     vet inherit            check the inheritance discipline of the
                            WV_RFIFO -> VS_RFIFO+TS -> GCS tower
     vet effects            audit footprint honesty: coarse fallbacks,
                            emit/footprint cross-checks, write-set
                            totality over driven runs, inheritance of
                            declared effects (DESIGN.md §14)
     vet corpus [DIR]       validate saved schedules against their
                            declared layer's action signature
                            (default test/corpus)
     vet fixture NAME       run one seeded miswiring fixture; MUST
                            report its expected diagnostic (so a clean
                            result is itself a failure)
     vet fixture -list      list fixture names
     vet wire               round-trip + totality check of the wire
                            codecs (codec errors come out in the
                            one-line vet:wire:... vocabulary)
     vet hotpath [DIR]      flag copy idioms (Buffer.to_bytes,
                            Bytes.sub_string) on the zero-copy wire
                            hot path (default lib/wire)
     vet domains            audit the planned multicore partition of
                            every shipped composition against the
                            footprint independence relation
                            (DESIGN.md §17)
     vet all [DIR]          wiring + inherit + effects + corpus + wire
                            + hotpath + domains

   The global [-json] (or [--json]) flag switches diagnostic output to
   one JSON object per finding (JSONL on stdout, no summary lines), so
   CI can annotate findings without scraping the human format.

   Exit codes: 0 clean, 1 diagnostics reported (or a fixture failing to
   produce its expected finding), 2 usage error. *)

module A = Vsgc_analysis

let die fmt = Fmt.kstr (fun s -> Fmt.epr "vet: %s@." s; exit 2) fmt

let json = ref false

let print_diags diags =
  List.iter
    (fun d ->
      if !json then print_endline (A.Diag.to_json d)
      else Fmt.pr "%a@." A.Diag.pp d)
    diags

let report label diags =
  print_diags diags;
  let n = List.length diags in
  if not !json then
    Fmt.pr "vet: %s: %s@." label
      (if n = 0 then "clean" else Fmt.str "%d diagnostic%s" n (if n = 1 then "" else "s"));
  n

let wiring () =
  let count =
    List.fold_left
      (fun acc (label, run) -> acc + report label (run ()))
      0
      [
        ("wiring wv", fun () -> A.Lint.layer `Wv);
        ("wiring vs", fun () -> A.Lint.layer `Vs);
        ("wiring full", fun () -> A.Lint.layer `Full);
        ("wiring server-stack", fun () -> A.Lint.server_stack ());
      ]
  in
  count

let inherit_ () =
  List.fold_left
    (fun acc (r : A.Inherit_check.report) ->
      if not !json then Fmt.pr "vet: %a@." A.Inherit_check.pp_report r;
      acc + report ("inherit " ^ r.A.Inherit_check.pair) r.A.Inherit_check.diags)
    0
    (A.Inherit_check.all ())

let effects () =
  List.fold_left
    (fun acc (label, diags) -> acc + report label diags)
    0
    (A.Effect_check.all ())

let corpus dir = report ("corpus " ^ dir) (A.Sched_check.check_dir dir)

let wire () = report "wire codecs" (A.Wire_check.check ())

let hotpath ?dir () =
  let dir = Option.value dir ~default:"lib/wire" in
  report ("hotpath " ^ dir) (A.Hotpath_check.check ~dir ())

let domains () =
  List.fold_left
    (fun acc (label, diags) -> acc + report label diags)
    0
    (A.Domain_check.all ())

let fixture name =
  match A.Fixtures.find name with
  | None ->
      die "unknown fixture %S (have: %s)" name (String.concat ", " A.Fixtures.names)
  | Some f ->
      let diags = f.A.Fixtures.run () in
      print_diags diags;
      let hit =
        List.exists (fun d -> d.A.Diag.check = f.A.Fixtures.expect) diags
      in
      if hit then begin
        if not !json then
          Fmt.pr "vet: fixture %s: reported %s as expected@." name
            f.A.Fixtures.expect;
        1 (* expected diagnostic found: exit non-zero, as CI asserts *)
      end
      else begin
        (* exit ZERO: CI inverts the fixture assertion, so a linter
           gone blind makes the build fail loudly *)
        Fmt.epr "vet: fixture %s: expected a %s diagnostic, got none — the linter is blind@."
          name f.A.Fixtures.expect;
        0
      end

let () =
  let argv =
    Array.of_list
      (List.filter
         (fun a ->
           if a = "-json" || a = "--json" then begin
             json := true;
             false
           end
           else true)
         (Array.to_list Sys.argv))
  in
  let arg i = if Array.length argv > i then Some argv.(i) else None in
  let count =
    match arg 1 with
    | Some "wiring" -> wiring ()
    | Some "inherit" -> inherit_ ()
    | Some "effects" -> effects ()
    | Some "corpus" -> corpus (Option.value (arg 2) ~default:"test/corpus")
    | Some "fixture" -> (
        match arg 2 with
        | Some "-list" ->
            List.iter print_endline A.Fixtures.names;
            0
        | Some name -> fixture name
        | None -> die "fixture: missing name (or -list)")
    | Some "wire" -> wire ()
    | Some "hotpath" -> hotpath ?dir:(arg 2) ()
    | Some "domains" -> domains ()
    | Some "all" ->
        wiring () + inherit_ () + effects ()
        + corpus (Option.value (arg 2) ~default:"test/corpus")
        + wire () + hotpath () + domains ()
    | Some cmd ->
        die "unknown subcommand %S (wiring|inherit|effects|corpus|fixture|wire|hotpath|domains|all)" cmd
    | None ->
        die "usage: vet [-json] (wiring|inherit|effects|corpus|fixture NAME|wire|hotpath|domains|all)"
  in
  exit (if count = 0 then 0 else 1)
