(* Chaos-schedule CLI over the networked runtime.

     chaos find   [opts]                sample seeded fault schedules until one
                                        fails the oracle battery; shrink + save
                                        (-corrupt adds corruption events;
                                         -want-detection hunts a green run whose
                                         corruption guards fired instead)
     chaos replay FILE.fault...         re-execute saved schedules, judge each
                                        against its expect header + fingerprint
     chaos pin    FILE.fault [OUT]      run a schedule and pin its fingerprint
     chaos soak   [opts]                corruption-enabled samples until the
                                        accumulated executor steps reach -steps;
                                        any violation is fatal; prints detection
                                        latency stats (DESIGN.md §13)

   Every schedule rebuilds a Net_system deployment from scratch; equal
   (seed, config) pairs sample equal schedules and equal schedules give
   equal fingerprints, so CI replays are exact. *)

module F = Vsgc_fault
module Executor = Vsgc_ioa.Executor

let die fmt = Fmt.kstr (fun s -> Fmt.epr "chaos: %s@." s; exit 2) fmt

(* -jobs N: width of the domain pool every deployment's executor uses
   when VSGC_SCHED selects a [`Parallel] mode (DESIGN.md §17). *)
let set_jobs j =
  if j < 1 then die "-jobs must be at least 1";
  Executor.set_default_jobs j

let jobs_opt = ("-jobs", Arg.Int set_jobs, "J executor domain-pool width (default 1)")

let layer_of_string = function
  | "wv" -> `Wv
  | "vs" -> `Vs
  | "full" -> `Full
  | s -> die "unknown layer %S (want wv|vs|full)" s

(* -- Options ------------------------------------------------------------- *)

let seed = ref 1
let rounds = ref 50
let clients = ref F.Chaos.default_config.F.Chaos.clients
let servers = ref F.Chaos.default_config.F.Chaos.servers
let blocks = ref F.Chaos.default_config.F.Chaos.fault_blocks
let layer = ref F.Chaos.default_config.F.Chaos.layer
let delay = ref F.Chaos.default_config.F.Chaos.knobs.Vsgc_net.Loopback.delay
let out = ref ""
let quiet = ref false
let corrupt = ref false
let want_detection = ref false
let soak_steps = ref 1_000_000
let arm = ref `Gcs

let arm_of_string = function
  | "gcs" -> `Gcs
  | "sym" -> `Sym
  | s -> die "bad -arm %S (want gcs|sym)" s

let find_opts =
  [
    ("-corrupt", Arg.Set corrupt, " sample state-corruption events too");
    ( "-want-detection",
      Arg.Set want_detection,
      " hunt a green run whose corruption guards fired (implies -corrupt)" );
    ("-seed", Arg.Set_int seed, "S base seed (default 1)");
    ("-rounds", Arg.Set_int rounds, "R schedules to sample (default 50)");
    ("-clients", Arg.Set_int clients, "N client count (default 3)");
    ( "-servers",
      Arg.Set_int servers,
      "M server count; 0 = scripted membership (default 2)" );
    ("-blocks", Arg.Set_int blocks, "B fault blocks per schedule (default 4)");
    ( "-layer",
      Arg.String (fun s -> layer := layer_of_string s),
      "L wv|vs|full (default full)" );
    ( "-arm",
      Arg.String (fun s -> arm := arm_of_string s),
      "A gcs|sym client automaton to deploy (default gcs)" );
    ("-delay", Arg.Set_int delay, "D baseline delay knob (default 1)");
    ("-o", Arg.Set_string out, "FILE save the (shrunk) finding here");
    ("-quiet", Arg.Set quiet, " only print the outcome line");
    jobs_opt;
  ]

let cmd_find args =
  Arg.parse_argv ~current:(ref 0)
    (Array.of_list (Sys.argv.(0) :: args))
    (Arg.align find_opts)
    (fun a -> die "find takes no positional argument (got %S)" a)
    "chaos find [options]";
  if !clients < 1 then die "-clients must be at least 1";
  let config =
    {
      F.Chaos.clients = !clients;
      servers = !servers;
      layer = !layer;
      arm = !arm;
      knobs = { Vsgc_net.Loopback.default_knobs with delay = !delay };
      fault_blocks = !blocks;
      corruption = !corrupt || !want_detection;
    }
  in
  let log = if !quiet then None else Some (fun s -> Fmt.pr "%s@." s) in
  let t0 = Unix.gettimeofday () in
  if !want_detection then begin
    let found = F.Chaos.find_detection ?log ~rounds:!rounds ~seed:!seed config in
    let dt = Unix.gettimeofday () -. t0 in
    match found with
    | None ->
        Fmt.pr "no detection in %d rounds (%.2fs)@." !rounds dt;
        exit 1
    | Some f ->
        Fmt.pr "detected-and-rejoined (round %d, %.2fs): %d detection(s)@."
          f.F.Chaos.round dt
          (List.length f.F.Chaos.detections);
        List.iter
          (fun (p, reason, at) -> Fmt.pr "  p%d @@ tick %d: %s@." p at reason)
          f.F.Chaos.detections;
        if !out <> "" then begin
          F.Schedule.save f.F.Chaos.schedule !out;
          Fmt.pr "saved: %s@." !out
        end
        else if not !quiet then Fmt.pr "%a@." F.Schedule.pp f.F.Chaos.schedule;
        exit 0
  end;
  let found = F.Chaos.find ?log ~rounds:!rounds ~seed:!seed config in
  let dt = Unix.gettimeofday () -. t0 in
  match found with
  | None ->
      Fmt.pr "no violation in %d rounds (%.2fs)@." !rounds dt;
      exit 1
  | Some f ->
      Fmt.pr "violation (round %d, %.2fs): %a@." f.F.Chaos.round dt
        F.Inject.pp_violation f.F.Chaos.violation;
      if not !quiet then
        Fmt.pr "schedule: %d events (%d before shrinking)@."
          (List.length f.F.Chaos.schedule.F.Schedule.events)
          f.F.Chaos.events_before_shrink;
      if !out <> "" then begin
        F.Schedule.save f.F.Chaos.schedule !out;
        Fmt.pr "saved: %s@." !out
      end
      else if not !quiet then Fmt.pr "%a@." F.Schedule.pp f.F.Chaos.schedule;
      exit 0

let cmd_replay args =
  let rec strip acc = function
    | [] -> List.rev acc
    | "-quiet" :: rest ->
        quiet := true;
        strip acc rest
    | "-jobs" :: j :: rest -> (
        match int_of_string_opt j with
        | Some j -> set_jobs j; strip acc rest
        | None -> die "-jobs wants an integer, got %S" j)
    | f :: rest -> strip (f :: acc) rest
  in
  let files = strip [] args in
  if files = [] then die "replay needs at least one FILE.fault";
  let bad = ref 0 in
  List.iter
    (fun file ->
      let sched = F.Schedule.load file in
      (match F.Inject.check sched with
      | F.Inject.Reproduced ->
          Fmt.pr "%s: reproduced %s@." file
            (Option.get sched.F.Schedule.conf.F.Schedule.expect)
      | F.Inject.Clean_ok -> Fmt.pr "%s: clean, as expected@." file
      | F.Inject.Missing kind ->
          incr bad;
          Fmt.pr "%s: FAILED to reproduce expected %s@." file kind
      | F.Inject.Unexpected v ->
          incr bad;
          Fmt.pr "%s: UNEXPECTED %a@." file F.Inject.pp_violation v
      | F.Inject.Fingerprint_mismatch { expected; got } ->
          incr bad;
          Fmt.pr "%s: FINGERPRINT drift@.  pinned: %s@.  got:    %s@." file
            expected got);
      if not !quiet then Fmt.pr "%a@." F.Schedule.pp sched)
    files;
  exit (if !bad = 0 then 0 else 1)

let cmd_pin args =
  match List.filter (fun a -> not (String.length a > 0 && a.[0] = '-')) args with
  | ([ file ] | [ file; _ ]) as pos ->
      let out = match pos with [ _; o ] -> o | _ -> file in
      let sched = F.Schedule.load file in
      let outcome = F.Inject.run sched in
      let expect = sched.F.Schedule.conf.F.Schedule.expect in
      let detections =
        Vsgc_harness.Net_system.detections outcome.F.Inject.net
      in
      (match (outcome.F.Inject.verdict, expect) with
      | Ok (), None -> ()
      | Ok (), Some kind when kind = F.Inject.detected_kind ->
          if detections = [] then
            die "%s: expected %s but no corruption guard fired" file kind
      | Error v, Some kind when v.F.Inject.kind = kind -> ()
      | Ok (), Some kind -> die "%s: expected %s but the run was clean" file kind
      | Error v, _ ->
          die "%s: run raised %a but the header expects %s" file
            F.Inject.pp_violation v
            (Option.value expect ~default:"clean"));
      let pinned =
        F.Schedule.with_fingerprint sched outcome.F.Inject.fingerprint
      in
      F.Schedule.save pinned out;
      Fmt.pr "%s: pinned %s -> %s@." file outcome.F.Inject.fingerprint out;
      exit 0
  | _ -> die "usage: chaos pin FILE.fault [OUT.fault]"

(* -- Soak (DESIGN.md §13, EXPERIMENTS.md E15) ----------------------------- *)

(* Corruption-enabled samples, seeds round_seed(seed, 0..), until the
   executor steps accumulated across all deployments reach the target.
   Any violation is fatal (the offending schedule is printed so it can
   be pinned as a regression); the summary reports how often the
   guards fired and how quickly after the corruption they did. *)
let soak_opts =
  [
    ("-steps", Arg.Set_int soak_steps, "N executor steps to accumulate (default 1000000)");
    ("-seed", Arg.Set_int seed, "S base seed (default 1)");
    ("-clients", Arg.Set_int clients, "N client count (default 3)");
    ( "-servers",
      Arg.Set_int servers,
      "M server count; 0 = scripted membership (default 2)" );
    ("-blocks", Arg.Set_int blocks, "B fault blocks per schedule (default 4)");
    ( "-layer",
      Arg.String (fun s -> layer := layer_of_string s),
      "L wv|vs|full (default full)" );
    ("-delay", Arg.Set_int delay, "D baseline delay knob (default 1)");
    ("-quiet", Arg.Set quiet, " only print the summary");
    jobs_opt;
  ]

let detection_latencies ~corruptions ~detections =
  (* pair each corruption with the first unconsumed detection of the
     same client at or after it *)
  let remaining = ref detections in
  List.filter_map
    (fun (p, t0) ->
      let rec take acc = function
        | [] -> None
        | (q, _, t1) :: rest when q = p && t1 >= t0 ->
            remaining := List.rev_append acc rest;
            Some (t1 - t0)
        | d :: rest -> take (d :: acc) rest
      in
      take [] !remaining)
    corruptions

let cmd_soak args =
  Arg.parse_argv ~current:(ref 0)
    (Array.of_list (Sys.argv.(0) :: args))
    (Arg.align soak_opts)
    (fun a -> die "soak takes no positional argument (got %S)" a)
    "chaos soak [options]";
  if !clients < 1 then die "-clients must be at least 1";
  let config =
    {
      F.Chaos.clients = !clients;
      servers = !servers;
      layer = !layer;
      arm = !arm;
      knobs = { Vsgc_net.Loopback.default_knobs with delay = !delay };
      fault_blocks = !blocks;
      corruption = true;
    }
  in
  let t0 = Unix.gettimeofday () in
  let steps = ref 0 and schedules = ref 0 in
  let corruptions = ref 0 and detections = ref 0 in
  let latencies = ref [] in
  while !steps < !soak_steps do
    let s = F.Chaos.sample ~seed:(F.Chaos.round_seed ~seed:!seed !schedules) config in
    incr schedules;
    let o = F.Inject.run s in
    (match o.F.Inject.verdict with
    | Ok () -> ()
    | Error v ->
        Fmt.pr "soak: VIOLATION after %d steps: %a@.%s@." !steps
          F.Inject.pp_violation v
          (F.Schedule.to_string s);
        exit 1);
    let net = o.F.Inject.net in
    let cs = Vsgc_harness.Net_system.corruptions net in
    let ds = Vsgc_harness.Net_system.detections net in
    steps := !steps + Vsgc_harness.Net_system.steps net;
    corruptions := !corruptions + List.length cs;
    detections := !detections + List.length ds;
    latencies :=
      List.rev_append (detection_latencies ~corruptions:cs ~detections:ds)
        !latencies;
    if (not !quiet) && !schedules mod 50 = 0 then
      Fmt.pr "soak: %d schedules, %d/%d steps@." !schedules !steps !soak_steps
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let lat = !latencies in
  let mean =
    match lat with
    | [] -> 0.0
    | _ ->
        float_of_int (List.fold_left ( + ) 0 lat) /. float_of_int (List.length lat)
  in
  let max_lat = List.fold_left max 0 lat in
  Fmt.pr
    "soak: green — %d schedules, %d steps, %d corruptions, %d detections, \
     detection latency mean %.2f max %d ticks (%.2fs)@."
    !schedules !steps !corruptions !detections mean max_lat dt;
  exit 0

(* -- kv-slo: the KV service SLO gate (DESIGN.md §15) ----------------------

   Drive the open-loop load generator across scripted partition-heal
   and crash-rejoin reconfigurations on the loopback deployment and
   judge the "delivery continues during reconfiguration" SLO: every
   acknowledged write is in its home replica's stable store (zero lost
   acks after dedup by command id), all live stores are byte-identical
   at the end, and the max client-visible stall stays within budget. *)

module Kv_system = Vsgc_kv.Kv_system
module Node_id = Vsgc_wire.Node_id

let kv_batch = ref false
let kv_rate = ref 1.0
let kv_count = ref 80
let kv_stall_budget = ref 600

let kv_slo_opts =
  [
    ("-seed", Arg.Set_int seed, "S deployment seed (default 1)");
    ("-batch", Arg.Set kv_batch, " batched stable delivery");
    ("-rate", Arg.Set_float kv_rate, "R offered load per tick (default 1.0)");
    ("-count", Arg.Set_int kv_count, "K writes per client (default 80)");
    ( "-stall-budget",
      Arg.Set_int kv_stall_budget,
      "T max client-visible stall in ticks (default 600)" );
    ("-quiet", Arg.Set quiet, " only print the outcome lines");
  ]

let kv_judge ~what (r : Kv_system.report) =
  let breaches = ref [] in
  let breach fmt = Fmt.kstr (fun s -> breaches := s :: !breaches) fmt in
  if r.Kv_system.acked < r.Kv_system.sent then
    breach "only %d/%d writes acknowledged" r.Kv_system.acked r.Kv_system.sent;
  if r.Kv_system.lost_acks <> 0 then
    breach "%d acknowledged writes missing from the stable store"
      r.Kv_system.lost_acks;
  if not r.Kv_system.converged then breach "live stores diverged";
  if r.Kv_system.max_stall > float_of_int !kv_stall_budget then
    breach "max stall %.0f ticks exceeds budget %d" r.Kv_system.max_stall
      !kv_stall_budget;
  Fmt.pr
    "kv-slo: %-15s %s — acked=%d/%d lost=%d dup=%d stall=%.0f p50=%d p99=%d \
     p999=%d rounds=%d@."
    what
    (if !breaches = [] then "ok" else "BREACH")
    r.Kv_system.acked r.Kv_system.sent r.Kv_system.lost_acks
    r.Kv_system.dup_acks r.Kv_system.max_stall r.Kv_system.p50 r.Kv_system.p99
    r.Kv_system.p999 r.Kv_system.rounds;
  List.iter (fun s -> Fmt.pr "  breach: %s@." s) (List.rev !breaches);
  !breaches = []

let cmd_kv_slo args =
  Arg.parse_argv ~current:(ref 0)
    (Array.of_list (Sys.argv.(0) :: args))
    (Arg.align kv_slo_opts)
    (fun a -> die "kv-slo takes no positional argument (got %S)" a)
    "chaos kv-slo [options]";
  let run ~homes ~script =
    Kv_system.slo_run ~seed:!seed ~batch:!kv_batch ~n:3 ~n_servers:2 ~homes
      ~clients:2 ~rate:!kv_rate ~count:!kv_count ~script ()
  in
  (* Partition: the two load homes end up on opposite sides of the
     split; both sides keep ordering in their own view, the heal
     merges them through one transitional-set snapshot exchange. *)
  let partition_heal =
    run ~homes:[ 0; 1 ]
      ~script:
        [
          ( 40,
            Kv_system.Partition
              [
                [ Node_id.Client 0; Node_id.Client 2; Node_id.Server 0 ];
                [ Node_id.Client 1; Node_id.Server 1 ];
              ] );
          (160, Kv_system.Heal);
        ]
  in
  (* Crash a non-home replica mid-load; it rejoins by the ordinary
     Join handshake and refolds its store from the post-transfer log. *)
  let crash_rejoin =
    run ~homes:[ 0; 1 ]
      ~script:[ (30, Kv_system.Crash 2); (120, Kv_system.Restart 2) ]
  in
  let ok =
    List.for_all
      (fun (what, r) -> kv_judge ~what r)
      [ ("partition-heal", partition_heal); ("crash-rejoin", crash_rejoin) ]
  in
  if ok then begin
    Fmt.pr "kv-slo: green (batch=%b)@." !kv_batch;
    exit 0
  end
  else exit 1

let usage () =
  Fmt.epr
    "usage:@.  chaos find [options]@.  chaos replay FILE.fault...@.  chaos pin \
     FILE.fault [OUT.fault]@.  chaos soak [options]@.  chaos kv-slo [options]@.";
  exit 2

let () =
  try
    match Array.to_list Sys.argv with
    | _ :: "find" :: args -> cmd_find args
    | _ :: "replay" :: args -> cmd_replay args
    | _ :: "pin" :: args -> cmd_pin args
    | _ :: "soak" :: args -> cmd_soak args
    | _ :: "kv-slo" :: args -> cmd_kv_slo args
    | _ -> usage ()
  with
  | F.Schedule.Parse_error msg -> die "parse error: %s" msg
  | Sys_error msg -> die "%s" msg
  | Invalid_argument msg -> die "%s" msg
