(* Chaos-schedule CLI over the networked runtime.

     chaos find   [opts]                sample seeded fault schedules until one
                                        fails the oracle battery; shrink + save
     chaos replay FILE.fault...         re-execute saved schedules, judge each
                                        against its expect header + fingerprint
     chaos pin    FILE.fault [OUT]      run a schedule and pin its fingerprint

   Every schedule rebuilds a Net_system deployment from scratch; equal
   (seed, config) pairs sample equal schedules and equal schedules give
   equal fingerprints, so CI replays are exact. *)

module F = Vsgc_fault

let die fmt = Fmt.kstr (fun s -> Fmt.epr "chaos: %s@." s; exit 2) fmt

let layer_of_string = function
  | "wv" -> `Wv
  | "vs" -> `Vs
  | "full" -> `Full
  | s -> die "unknown layer %S (want wv|vs|full)" s

(* -- Options ------------------------------------------------------------- *)

let seed = ref 1
let rounds = ref 50
let clients = ref F.Chaos.default_config.F.Chaos.clients
let servers = ref F.Chaos.default_config.F.Chaos.servers
let blocks = ref F.Chaos.default_config.F.Chaos.fault_blocks
let layer = ref F.Chaos.default_config.F.Chaos.layer
let delay = ref F.Chaos.default_config.F.Chaos.knobs.Vsgc_net.Loopback.delay
let out = ref ""
let quiet = ref false

let find_opts =
  [
    ("-seed", Arg.Set_int seed, "S base seed (default 1)");
    ("-rounds", Arg.Set_int rounds, "R schedules to sample (default 50)");
    ("-clients", Arg.Set_int clients, "N client count (default 3)");
    ( "-servers",
      Arg.Set_int servers,
      "M server count; 0 = scripted membership (default 2)" );
    ("-blocks", Arg.Set_int blocks, "B fault blocks per schedule (default 4)");
    ( "-layer",
      Arg.String (fun s -> layer := layer_of_string s),
      "L wv|vs|full (default full)" );
    ("-delay", Arg.Set_int delay, "D baseline delay knob (default 1)");
    ("-o", Arg.Set_string out, "FILE save the (shrunk) finding here");
    ("-quiet", Arg.Set quiet, " only print the outcome line");
  ]

let cmd_find args =
  Arg.parse_argv ~current:(ref 0)
    (Array.of_list (Sys.argv.(0) :: args))
    (Arg.align find_opts)
    (fun a -> die "find takes no positional argument (got %S)" a)
    "chaos find [options]";
  if !clients < 1 then die "-clients must be at least 1";
  let config =
    {
      F.Chaos.clients = !clients;
      servers = !servers;
      layer = !layer;
      knobs = { Vsgc_net.Loopback.default_knobs with delay = !delay };
      fault_blocks = !blocks;
    }
  in
  let log = if !quiet then None else Some (fun s -> Fmt.pr "%s@." s) in
  let t0 = Unix.gettimeofday () in
  let found = F.Chaos.find ?log ~rounds:!rounds ~seed:!seed config in
  let dt = Unix.gettimeofday () -. t0 in
  match found with
  | None ->
      Fmt.pr "no violation in %d rounds (%.2fs)@." !rounds dt;
      exit 1
  | Some f ->
      Fmt.pr "violation (round %d, %.2fs): %a@." f.F.Chaos.round dt
        F.Inject.pp_violation f.F.Chaos.violation;
      if not !quiet then
        Fmt.pr "schedule: %d events (%d before shrinking)@."
          (List.length f.F.Chaos.schedule.F.Schedule.events)
          f.F.Chaos.events_before_shrink;
      if !out <> "" then begin
        F.Schedule.save f.F.Chaos.schedule !out;
        Fmt.pr "saved: %s@." !out
      end
      else if not !quiet then Fmt.pr "%a@." F.Schedule.pp f.F.Chaos.schedule;
      exit 0

let cmd_replay args =
  let files = List.filter (fun a -> a <> "-quiet") args in
  quiet := List.mem "-quiet" args;
  if files = [] then die "replay needs at least one FILE.fault";
  let bad = ref 0 in
  List.iter
    (fun file ->
      let sched = F.Schedule.load file in
      (match F.Inject.check sched with
      | F.Inject.Reproduced ->
          Fmt.pr "%s: reproduced %s@." file
            (Option.get sched.F.Schedule.conf.F.Schedule.expect)
      | F.Inject.Clean_ok -> Fmt.pr "%s: clean, as expected@." file
      | F.Inject.Missing kind ->
          incr bad;
          Fmt.pr "%s: FAILED to reproduce expected %s@." file kind
      | F.Inject.Unexpected v ->
          incr bad;
          Fmt.pr "%s: UNEXPECTED %a@." file F.Inject.pp_violation v
      | F.Inject.Fingerprint_mismatch { expected; got } ->
          incr bad;
          Fmt.pr "%s: FINGERPRINT drift@.  pinned: %s@.  got:    %s@." file
            expected got);
      if not !quiet then Fmt.pr "%a@." F.Schedule.pp sched)
    files;
  exit (if !bad = 0 then 0 else 1)

let cmd_pin args =
  match List.filter (fun a -> not (String.length a > 0 && a.[0] = '-')) args with
  | ([ file ] | [ file; _ ]) as pos ->
      let out = match pos with [ _; o ] -> o | _ -> file in
      let sched = F.Schedule.load file in
      let outcome = F.Inject.run sched in
      let expect = sched.F.Schedule.conf.F.Schedule.expect in
      (match (outcome.F.Inject.verdict, expect) with
      | Ok (), None -> ()
      | Error v, Some kind when v.F.Inject.kind = kind -> ()
      | Ok (), Some kind -> die "%s: expected %s but the run was clean" file kind
      | Error v, _ ->
          die "%s: run raised %a but the header expects %s" file
            F.Inject.pp_violation v
            (Option.value expect ~default:"clean"));
      let pinned =
        F.Schedule.with_fingerprint sched outcome.F.Inject.fingerprint
      in
      F.Schedule.save pinned out;
      Fmt.pr "%s: pinned %s -> %s@." file outcome.F.Inject.fingerprint out;
      exit 0
  | _ -> die "usage: chaos pin FILE.fault [OUT.fault]"

let usage () =
  Fmt.epr
    "usage:@.  chaos find [options]@.  chaos replay FILE.fault...@.  chaos pin \
     FILE.fault [OUT.fault]@.";
  exit 2

let () =
  try
    match Array.to_list Sys.argv with
    | _ :: "find" :: args -> cmd_find args
    | _ :: "replay" :: args -> cmd_replay args
    | _ :: "pin" :: args -> cmd_pin args
    | _ -> usage ()
  with
  | F.Schedule.Parse_error msg -> die "parse error: %s" msg
  | Sys_error msg -> die "%s" msg
  | Invalid_argument msg -> die "%s" msg
